"""The rule catalogue: AST checks for the engine's stated invariants.

Every rule here enforces a contract the runtime equivalence tests can
only probe probabilistically — RNG placement, lock discipline, iteration
determinism, taxonomy completeness.  Rules are :class:`Rule` subclasses
with a stable ``code``; :func:`default_rules` builds the registry a lint
run executes.  All configuration (which files are worker-executed, which
classes are lock-guarded, which scopes metrics may use) lives in
:class:`LintConfig`, addressed by path *suffix* so test fixtures can
reproduce the layout under a temporary directory.

The catalogue (see ``repro lint --list-rules``):

======  ==========================  =========================================
code    name                        contract
======  ==========================  =========================================
REP000  syntax-error                the file must parse (framework)
REP101  worker-rng                  no RNG construction in (or global-state
                                    RNG reachable from) worker-executed
                                    modules; growth is the only RNG and runs
                                    scheduler-side
REP102  fingerprint-purity          fingerprint/token functions are pure:
                                    no time, id(), hash(), uuid or RNG
REP103  worker-growth               worker-executed modules never call the
                                    grow*/initialise lifecycle (scheduler-only)
REP201  unlocked-shared-write       writes to ``self._*`` shared state of
                                    guarded classes happen under a lock
REP202  lock-order-cycle            the lock acquisition-order graph is
                                    acyclic (and never re-entered)
REP301  unordered-set-iteration     sets never feed ordered outputs without
                                    ``sorted`` in deterministic paths
REP401  metric-naming               MetricsScope registrations resolve to
                                    ``repro_{plan,exec,scheduler,workers,
                                    server}_[a-z0-9_]*``
REP402  error-status-mapping        every repro.errors class maps to an HTTP
                                    status in server/app.py (not just the
                                    ReproError 500 catch-all), subclasses
                                    listed before their bases
REP403  stage-bucket-attribution    every STAGE_* constant is attributed to
                                    some ``stage_ms`` bucket somewhere
REP501  unused-suppression          every ``# repro: ignore[...]`` still
                                    suppresses something (framework)
======  ==========================  =========================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule

__all__ = [
    "LintConfig",
    "Rule",
    "RULE_DESCRIPTIONS",
    "default_rules",
]


@dataclass(frozen=True)
class LintConfig:
    """The contract tables the rules check against.

    Files are named by posix path suffix (matched on ``/`` boundaries),
    so the defaults bind to the repository layout while fixture trees in
    tests can reproduce any subset under a scratch directory.
    """

    #: modules whose code executes inside worker processes (round +
    #: prewarm execution) or is called from them on the hot validation
    #: path — the no-RNG, no-growth zone
    worker_modules: tuple[str, ...] = (
        "store/workers.py",
        "semantics/kernels.py",
        "semantics/validation.py",
    )
    #: modules sanctioned to construct RNG even though they are import-
    #: reachable from worker modules: growth in the executor (the only
    #: sanctioned RNG site — it always runs scheduler-side) and the
    #: central seed-derivation helpers
    sanctioned_rng_modules: tuple[str, ...] = (
        "core/executor.py",
        "utils/rng.py",
    )
    #: classes whose ``self._*`` state is shared across threads and must
    #: only be written under a lock (or inside ``__init__``/its helpers,
    #: or in a ``*_locked`` method whose caller holds the lock)
    guarded_classes: tuple[str, ...] = (
        "AggregateQueryService",
        "ProcessBackend",
        "WorkerPool",
        "PlanCache",
    )
    #: modules whose lock acquisitions join the acquisition-order graph
    lock_order_modules: tuple[str, ...] = (
        "core/service.py",
        "store/workers.py",
        "obs/metrics.py",
    )
    #: modules on the determinism-critical path (kernels, round export,
    #: persistence, wire encoding): set iteration must never feed an
    #: ordered output unsorted
    deterministic_modules: tuple[str, ...] = (
        "semantics/kernels.py",
        "semantics/validation.py",
        "core/executor.py",
        "store/workers.py",
        "store/plans.py",
        "store/snapshot.py",
        "kg/csr.py",
        "kg/io.py",
        "server/app.py",
    )
    #: the only metric scopes the observability contract recognises
    metric_scopes: tuple[str, ...] = (
        "plan", "exec", "scheduler", "workers", "server",
    )
    metric_namespace: str = "repro"
    #: the errors-taxonomy module and the HTTP mapping that must cover it
    errors_module: str = "errors.py"
    status_module: str = "server/app.py"
    status_table: str = "_ERROR_STATUS"
    #: where STAGE_* bucket constants are declared
    stage_module: str = "core/executor.py"
    stage_prefix: str = "STAGE_"


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin, from every import in the module."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                origin = f"{base}.{alias.name}" if base else alias.name
                aliases[alias.asname or alias.name] = origin
    return aliases


def _resolve_origin(aliases: dict[str, str], node: ast.expr) -> str | None:
    """Render a call target as a fully-dotted origin, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _functions(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _parent_map(tree: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _is_self_attr(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


_LOCKISH = re.compile(r"lock|condition", re.IGNORECASE)


def _lockish_attr(node: ast.expr) -> str | None:
    """The attribute name when ``node`` is ``self.<something lock-like>``."""
    if _is_self_attr(node) and _LOCKISH.search(node.attr):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# Rule base
# ---------------------------------------------------------------------------

class Rule:
    """One invariant check over a :class:`Project`."""

    code: str = "REP000"
    name: str = "rule"
    severity: str = "error"
    summary: str = ""

    def __init__(self, config: LintConfig | None = None) -> None:
        self.config = config or LintConfig()

    def check(self, project: Project) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: SourceModule,
        node: ast.AST | int,
        message: str,
        anchor_lines: tuple[int, ...] = (),
    ) -> Finding:
        if isinstance(node, int):
            line, column = node, 0
        else:
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0)
        return Finding(
            code=self.code,
            message=message,
            path=module.display_path,
            line=line,
            column=column,
            severity=self.severity,
            anchor_lines=anchor_lines,
        )


# ---------------------------------------------------------------------------
# REP101 — RNG discipline in worker-executed code
# ---------------------------------------------------------------------------

#: names that construct a generator (fine when explicitly seeded outside
#: worker modules; never fine inside them)
_RNG_CONSTRUCTOR_TAILS = (
    "default_rng", "ensure_rng", "Generator", "PCG64", "SeedSequence",
    "RandomState",
)


def _rng_call_kind(origin: str) -> str | None:
    """Classify a call origin: "global" (shared-state RNG), "constructor"
    (builds a generator) or None (not RNG)."""
    if origin == "random.Random":
        return "constructor"  # an owned stream; fine when seeded
    if origin.startswith("random.") or origin == "random":
        return "global"
    tail = origin.rsplit(".", 1)[-1]
    if origin.startswith("numpy.random.") or ".random." in origin:
        if tail in _RNG_CONSTRUCTOR_TAILS:
            return "constructor"
        return "global"
    if tail in ("ensure_rng", "default_rng"):
        return "constructor"
    return None


def _is_unseeded(call: ast.Call) -> bool:
    if not call.args and not call.keywords:
        return True
    if call.args and isinstance(call.args[0], ast.Constant):
        return call.args[0].value is None
    return False


class WorkerRngRule(Rule):
    code = "REP101"
    name = "worker-rng"
    summary = (
        "no RNG construction in worker-executed modules, and no "
        "global-state or unseeded RNG anywhere import-reachable from them"
    )

    def check(self, project: Project) -> list[Finding]:
        config = self.config
        roots = [
            module for module in project
            if any(module.matches(s) for s in config.worker_modules)
        ]
        if not roots:
            return []
        findings: list[Finding] = []
        reachable = project.reachable_from(roots)
        root_ids = {id(module) for module in roots}
        for module in reachable:
            if any(module.matches(s) for s in config.sanctioned_rng_modules):
                continue
            is_entry = id(module) in root_ids
            aliases = _import_aliases(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                origin = _resolve_origin(aliases, node.func)
                if origin is None:
                    continue
                kind = _rng_call_kind(origin)
                if kind is None:
                    continue
                if is_entry:
                    findings.append(self.finding(
                        module, node,
                        f"RNG call {origin}() in a worker-executed module; "
                        "growth is the only sanctioned RNG and runs "
                        "scheduler-side (core/executor.py)",
                    ))
                elif kind == "global":
                    findings.append(self.finding(
                        module, node,
                        f"global-state RNG call {origin}() is import-"
                        "reachable from worker-executed modules; results "
                        "would differ across backends — use an explicitly "
                        "seeded generator (utils/rng.ensure_rng)",
                    ))
                elif _is_unseeded(node):
                    findings.append(self.finding(
                        module, node,
                        f"unseeded RNG {origin}() is import-reachable from "
                        "worker-executed modules; derive the seed "
                        "explicitly (utils/rng.derive_seed) or move the "
                        "call to the scheduler",
                    ))
        return findings


# ---------------------------------------------------------------------------
# REP102 — fingerprint purity
# ---------------------------------------------------------------------------

_FINGERPRINT_EXTRA_NAMES = ("config_token", "component_token")


class FingerprintPurityRule(Rule):
    code = "REP102"
    name = "fingerprint-purity"
    summary = (
        "fingerprint/token functions must be pure content hashes: no "
        "time, datetime, uuid, os.urandom, id(), hash() or RNG"
    )

    def _impure(self, origin: str) -> str | None:
        if origin.startswith("time.") or origin == "time.time":
            return "wall-clock time"
        if origin.startswith("datetime.") and origin.rsplit(".", 1)[-1] in (
            "now", "utcnow", "today"
        ):
            return "wall-clock time"
        if origin.startswith("uuid."):
            return "a random UUID"
        if origin == "os.urandom":
            return "OS entropy"
        if origin == "id":
            return "a process-local object address"
        if origin == "hash":
            return "the per-process salted builtin hash"
        if _rng_call_kind(origin) is not None:
            return "RNG"
        return None

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            aliases = _import_aliases(module.tree)
            for func in _functions(module.tree):
                if (
                    "fingerprint" not in func.name
                    and func.name not in _FINGERPRINT_EXTRA_NAMES
                ):
                    continue
                for node in ast.walk(func):
                    if not isinstance(node, ast.Call):
                        continue
                    origin = _resolve_origin(aliases, node.func)
                    if origin is None:
                        continue
                    why = self._impure(origin)
                    if why is not None:
                        findings.append(self.finding(
                            module, node,
                            f"{origin}() inside fingerprint function "
                            f"{func.name}() folds {why} into a supposedly "
                            "content-derived key; fingerprints must be "
                            "pure so cache/store keys survive restarts",
                        ))
        return findings


# ---------------------------------------------------------------------------
# REP103 — growth lifecycle never runs worker-side
# ---------------------------------------------------------------------------

_GROWTH_NAMES = ("grow", "grow_grouped", "grow_extreme", "initialise")


class WorkerGrowthRule(Rule):
    code = "REP103"
    name = "worker-growth"
    summary = (
        "worker-executed modules never call the grow*/initialise "
        "lifecycle — growth (the only RNG) runs in the scheduler thread"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            if not any(module.matches(s) for s in self.config.worker_modules):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = None
                if isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                elif isinstance(node.func, ast.Name):
                    name = node.func.id
                if name in _GROWTH_NAMES:
                    findings.append(self.finding(
                        module, node,
                        f"{name}() called from a worker-executed module; "
                        "the grow/initialise lifecycle (and its RNG) is "
                        "scheduler-only — workers receive already-grown "
                        "samples so replays stay byte-identical",
                    ))
        return findings


# ---------------------------------------------------------------------------
# REP201 — lock discipline for shared state
# ---------------------------------------------------------------------------

class LockDisciplineRule(Rule):
    code = "REP201"
    name = "unlocked-shared-write"
    summary = (
        "guarded classes write self._* shared state only under a lock, "
        "in __init__ (and its helpers), or in *_locked methods whose "
        "caller holds the lock"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.ClassDef)
                    and node.name in self.config.guarded_classes
                ):
                    findings.extend(self._check_class(module, node))
        return findings

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> list[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        init_helpers: set[str] = set()
        init = methods.get("__init__")
        if init is not None:
            for node in ast.walk(init):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and _is_self_attr(node.func)
                    and node.func.attr in methods
                ):
                    init_helpers.add(node.func.attr)
        findings: list[Finding] = []
        for name, method in methods.items():
            if name == "__init__" or name in init_helpers:
                continue
            if name.endswith("_locked"):
                # naming contract: the caller already holds the lock
                continue
            findings.extend(
                self._check_method(module, cls, method)
            )
        return findings

    def _check_method(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[Finding]:
        findings: list[Finding] = []
        anchor = (cls.lineno,)

        def flag(node: ast.AST, attr: str) -> None:
            findings.append(self.finding(
                module, node,
                f"{cls.name}.{method.name} writes shared attribute "
                f"self.{attr} outside a lock; guard it with the class "
                "lock, move it to __init__, or give the method a "
                "*_locked name if its caller holds the lock",
                anchor_lines=anchor,
            ))

        def target_attr(target: ast.expr) -> str | None:
            """The shared-attr name a write target touches, if any."""
            node = target
            if isinstance(node, ast.Subscript):
                node = node.value
            if (
                _is_self_attr(node)
                and node.attr.startswith("_")
                and not _LOCKISH.search(node.attr)
            ):
                return node.attr
            return None

        def walk(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                holds = locked or any(
                    _lockish_attr(item.context_expr) is not None
                    for item in node.items
                )
                for child in node.body:
                    walk(child, holds)
                return
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return  # nested callables run at unknown times; skip
            if not locked:
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        attr = target_attr(target)
                        if attr is not None:
                            flag(node, attr)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    attr = target_attr(node.target)
                    if attr is not None:
                        flag(node, attr)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        attr = target_attr(target)
                        if attr is not None:
                            flag(node, attr)
            for child in ast.iter_child_nodes(node):
                walk(child, locked)

        for statement in method.body:
            walk(statement, False)
        return findings


# ---------------------------------------------------------------------------
# REP202 — lock acquisition-order graph must be acyclic
# ---------------------------------------------------------------------------

class LockOrderRule(Rule):
    code = "REP202"
    name = "lock-order-cycle"
    summary = (
        "nested lock acquisitions (including one call level deep) form "
        "an acyclic order; cycles and re-entries deadlock"
    )

    def check(self, project: Project) -> list[Finding]:
        # edges: (outer lock id, inner lock id) -> (module, node) of first
        # occurrence; lock ids are class-qualified attr names
        edges: dict[tuple[str, str], tuple[SourceModule, ast.AST]] = {}
        for module in project:
            if not any(
                module.matches(s) for s in self.config.lock_order_modules
            ):
                continue
            for cls in ast.walk(module.tree):
                if not isinstance(cls, ast.ClassDef):
                    continue
                self._class_edges(module, cls, edges)
        return self._report_cycles(edges)

    @staticmethod
    def _direct_locks(cls_name: str, func: ast.AST) -> list[str]:
        locks = []
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    attr = _lockish_attr(item.context_expr)
                    if attr is not None:
                        locks.append(f"{cls_name}.{attr}")
        return locks

    def _class_edges(self, module, cls, edges) -> None:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        method_locks = {
            name: self._direct_locks(cls.name, func)
            for name, func in methods.items()
        }

        def record(outer: str, inner: str, node: ast.AST) -> None:
            edges.setdefault((outer, inner), (module, node))

        def walk(node: ast.AST, held: list[str]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = []
                for item in node.items:
                    attr = _lockish_attr(item.context_expr)
                    if attr is not None:
                        lock_id = f"{cls.name}.{attr}"
                        for outer in held + acquired:
                            record(outer, lock_id, node)
                        acquired.append(lock_id)
                for child in node.body:
                    walk(child, held + acquired)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return
            if held and isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and _is_self_attr(node.func):
                # one call level deep: self.m() under a held lock inherits
                # the held set for m's own direct acquisitions
                for inner in method_locks.get(node.func.attr, ()):
                    for outer in held:
                        record(outer, inner, node)
            for child in ast.iter_child_nodes(node):
                walk(child, held)

        for func in methods.values():
            for statement in func.body:
                walk(statement, [])

    def _report_cycles(self, edges) -> list[Finding]:
        graph: dict[str, set[str]] = {}
        for outer, inner in edges:
            graph.setdefault(outer, set()).add(inner)
            graph.setdefault(inner, set())
        findings: list[Finding] = []
        # self-edges are immediate deadlocks (non-reentrant locks)
        for (outer, inner), (module, node) in sorted(
            edges.items(), key=lambda kv: (kv[1][0].display_path,
                                           kv[1][1].lineno)
        ):
            if outer == inner:
                findings.append(self.finding(
                    module, node,
                    f"lock {outer} is re-acquired while already held; "
                    "threading.Lock/Condition are not reentrant — this "
                    "deadlocks",
                ))
        # longer cycles via DFS back-edge detection
        seen_cycles: set[frozenset[str]] = set()
        state: dict[str, int] = {}
        stack: list[str] = []

        def dfs(lock: str) -> None:
            state[lock] = 1
            stack.append(lock)
            for nxt in sorted(graph.get(lock, ())):
                if nxt == lock:
                    continue
                if state.get(nxt, 0) == 1:
                    cycle = stack[stack.index(nxt):] + [nxt]
                    key = frozenset(cycle)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        edge = edges.get((lock, nxt)) or next(
                            iter(edges.values())
                        )
                        module, node = edge
                        findings.append(self.finding(
                            module, node,
                            "lock acquisition-order cycle: "
                            + " -> ".join(cycle)
                            + "; acquire locks in one global order",
                        ))
                elif state.get(nxt, 0) == 0:
                    dfs(nxt)
            stack.pop()
            state[lock] = 2

        for lock in sorted(graph):
            if state.get(lock, 0) == 0:
                dfs(lock)
        return findings


# ---------------------------------------------------------------------------
# REP301 — set iteration feeding ordered outputs
# ---------------------------------------------------------------------------

_ORDER_INSENSITIVE = {
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
}
_ORDERED_WRAPPERS = {"list", "tuple", "enumerate"}
_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}


class SetIterationRule(Rule):
    code = "REP301"
    name = "unordered-set-iteration"
    summary = (
        "in deterministic-path modules, sets never flow into ordered "
        "outputs (list/tuple/enumerate/join/comprehensions/yield) "
        "without sorted()"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            if not any(
                module.matches(s)
                for s in self.config.deterministic_modules
            ):
                continue
            parents = _parent_map(module.tree)
            scopes = list(_functions(module.tree)) + [module.tree]
            claimed: set[int] = set()
            for scope in scopes:
                if isinstance(scope, ast.Module):
                    body_nodes = [
                        n for n in ast.walk(scope)
                        if id(n) not in claimed
                    ]
                else:
                    body_nodes = list(ast.walk(scope))
                    claimed.update(id(n) for n in body_nodes)
                set_vars = self._set_vars(body_nodes)
                findings.extend(self._check_scope(
                    module, body_nodes, set_vars, parents
                ))
        return findings

    def _is_set_expr(self, node: ast.expr, set_vars: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_vars
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set", "frozenset"
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self._is_set_expr(node.func.value, set_vars)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_vars) or (
                self._is_set_expr(node.right, set_vars)
            )
        return False

    def _set_vars(self, nodes: list[ast.AST]) -> set[str]:
        set_vars: set[str] = set()
        # two passes so `a = set(...); b = a | other` both resolve
        for _ in range(2):
            for node in nodes:
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and self._is_set_expr(
                        node.value, set_vars
                    ):
                        set_vars.add(target.id)
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if node.target.id in set_vars:
                        continue
        return set_vars

    def _consumed_insensitively(self, node: ast.AST, parents) -> bool:
        parent = parents.get(id(node))
        if isinstance(parent, ast.Call) and node in parent.args:
            if isinstance(parent.func, ast.Name):
                return parent.func.id in _ORDER_INSENSITIVE
        return False

    def _check_scope(self, module, nodes, set_vars, parents) -> list[Finding]:
        findings: list[Finding] = []
        advice = (
            "; set iteration order varies across runs/processes — wrap "
            "in sorted(...) (or suppress with a reviewed justification "
            "if the consumer is order-insensitive)"
        )
        for node in nodes:
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDERED_WRAPPERS
                    and node.args
                    and self._is_set_expr(node.args[0], set_vars)
                    and not self._consumed_insensitively(node, parents)
                ):
                    findings.append(self.finding(
                        module, node,
                        f"{func.id}() over a set produces an "
                        "unstable ordering" + advice,
                    ))
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and self._is_set_expr(node.args[0], set_vars)
                ):
                    findings.append(self.finding(
                        module, node,
                        "str.join() over a set produces an unstable "
                        "ordering" + advice,
                    ))
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                if any(
                    self._is_set_expr(gen.iter, set_vars)
                    for gen in node.generators
                ) and not self._consumed_insensitively(node, parents):
                    kind = (
                        "list" if isinstance(node, ast.ListComp) else "dict"
                    )
                    findings.append(self.finding(
                        module, node,
                        f"{kind} comprehension over a set produces an "
                        "unstable ordering" + advice,
                    ))
            elif isinstance(node, ast.For):
                if self._is_set_expr(node.iter, set_vars) and any(
                    isinstance(inner, (ast.Yield, ast.YieldFrom))
                    for stmt in node.body
                    for inner in ast.walk(stmt)
                ):
                    findings.append(self.finding(
                        module, node,
                        "generator yields in set-iteration order, which "
                        "is unstable" + advice,
                    ))
        return findings


# ---------------------------------------------------------------------------
# REP401 — metric naming contract
# ---------------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_INSTRUMENT_METHODS = ("counter", "gauge", "histogram")


class MetricNameRule(Rule):
    code = "REP401"
    name = "metric-naming"
    summary = (
        "every MetricsScope registration resolves to "
        "repro_{plan,exec,scheduler,workers,server}_[a-z0-9_]* — one "
        "scope per layer, names greppable from the ROADMAP"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            if module.matches("obs/metrics.py"):
                continue  # the registry itself, not a registration site
            for scope_node in [module.tree, *_functions(module.tree)]:
                findings.extend(self._check_scope(module, scope_node))
        return findings

    def _scope_literal(self, node: ast.expr) -> str | None:
        """The scope name when ``node`` is ``<x>.scope("literal")``."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "scope"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            return node.args[0].value
        return None

    def _check_scope(self, module, scope_root) -> list[Finding]:
        findings: list[Finding] = []
        scope_vars: dict[str, str] = {}
        nodes = (
            list(ast.walk(scope_root))
            if not isinstance(scope_root, ast.Module)
            else list(scope_root.body)
            + [n for stmt in scope_root.body for n in ast.walk(stmt)
               if not isinstance(
                   stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
               )]
        )
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                scope_name = self._scope_literal(node.value)
                if scope_name is not None and isinstance(
                    node.targets[0], ast.Name
                ):
                    scope_vars[node.targets[0].id] = scope_name
        for node in nodes:
            scope_name = self._scope_literal(node)
            if scope_name is not None:
                if scope_name not in self.config.metric_scopes:
                    findings.append(self.finding(
                        module, node,
                        f"metric scope {scope_name!r} is not one of the "
                        "contract scopes "
                        f"{'/'.join(self.config.metric_scopes)}; every "
                        "layer registers under its own documented scope",
                    ))
                continue
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _INSTRUMENT_METHODS
            ):
                continue
            owner = node.func.value
            owner_scope = self._scope_literal(owner)
            if owner_scope is None and isinstance(owner, ast.Name):
                owner_scope = scope_vars.get(owner.id)
            if owner_scope is None:
                continue  # not a MetricsScope registration we can see
            if not node.args or not isinstance(node.args[0], ast.Constant):
                findings.append(self.finding(
                    module, node,
                    "metric names must be string literals so the full "
                    f"{self.config.metric_namespace}_{owner_scope}_* name "
                    "is greppable",
                ))
                continue
            metric = str(node.args[0].value)
            full = (
                f"{self.config.metric_namespace}_{owner_scope}_{metric}"
            )
            if not _METRIC_NAME_RE.match(metric):
                findings.append(self.finding(
                    module, node,
                    f"metric name {metric!r} (full name {full!r}) must "
                    "match [a-z][a-z0-9_]*",
                ))
        return findings


# ---------------------------------------------------------------------------
# REP402 — errors taxonomy <-> HTTP status completeness
# ---------------------------------------------------------------------------

class ErrorTaxonomyRule(Rule):
    code = "REP402"
    name = "error-status-mapping"
    summary = (
        "every repro.errors exception class is status-mapped in "
        "server/app.py by itself or a base more specific than the "
        "ReproError 500 catch-all, with subclasses before bases"
    )

    def check(self, project: Project) -> list[Finding]:
        errors = project.find(self.config.errors_module)
        status = project.find(self.config.status_module)
        if errors is None or status is None:
            return []
        bases: dict[str, list[str]] = {}
        class_lines: dict[str, int] = {}
        for node in errors.tree.body:
            if isinstance(node, ast.ClassDef):
                bases[node.name] = [
                    base.id for base in node.bases
                    if isinstance(base, ast.Name)
                ]
                class_lines[node.name] = node.lineno
        roots = [
            name for name, parents in bases.items()
            if "Exception" in parents
        ]
        if not roots:
            return []
        root = roots[0]

        def ancestors(name: str) -> list[str]:
            out: list[str] = []
            frontier = list(bases.get(name, ()))
            while frontier:
                base = frontier.pop()
                if base in bases and base not in out:
                    out.append(base)
                    frontier.extend(bases[base])
            return out

        table_node = None
        for node in ast.walk(status.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if any(
                    isinstance(t, ast.Name)
                    and t.id == self.config.status_table
                    for t in targets
                ):
                    table_node = node
                    break
        if table_node is None or table_node.value is None:
            return [self.finding(
                status, 1,
                f"status table {self.config.status_table} not found in "
                f"{status.display_path}; the errors taxonomy has no HTTP "
                "mapping",
            )]
        entries: list[tuple[str, ast.AST]] = []
        if isinstance(table_node.value, (ast.Tuple, ast.List)):
            for element in table_node.value.elts:
                if (
                    isinstance(element, (ast.Tuple, ast.List))
                    and element.elts
                    and isinstance(element.elts[0], ast.Name)
                ):
                    entries.append((element.elts[0].id, element))
        findings: list[Finding] = []
        mapped = [name for name, _ in entries]
        for name in bases:
            if name == root:
                continue
            covering = [
                entry for entry in mapped
                if entry != root and (
                    entry == name or entry in ancestors(name)
                )
            ]
            if not covering:
                findings.append(self.finding(
                    status, table_node,
                    f"exception class {name} (declared at "
                    f"{errors.display_path}:{class_lines[name]}) falls "
                    f"through to the {root} 500 catch-all; add a "
                    f"{self.config.status_table} entry so its wire "
                    "status is a decision, not an accident",
                ))
        for i, (earlier, _node) in enumerate(entries):
            for later, node in entries[i + 1:]:
                if earlier != later and earlier in ancestors(later):
                    findings.append(self.finding(
                        status, node,
                        f"status entry {later} is unreachable: its base "
                        f"{earlier} appears earlier in "
                        f"{self.config.status_table} and isinstance-"
                        "matches first; order subclasses before bases",
                    ))
        return findings


# ---------------------------------------------------------------------------
# REP403 — every stage bucket is attributed
# ---------------------------------------------------------------------------

class StageBucketRule(Rule):
    code = "REP403"
    name = "stage-bucket-attribution"
    summary = (
        "every STAGE_* constant is attributed somewhere (a timer "
        "measure, setdefault or stage write) so stage_ms keeps summing "
        "to wall clock"
    )

    def check(self, project: Project) -> list[Finding]:
        stage_module = project.find(self.config.stage_module)
        if stage_module is None:
            return []
        constants: dict[str, int] = {}
        for node in stage_module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id.startswith(
                        self.config.stage_prefix
                    ):
                        constants[target.id] = node.lineno
        if not constants:
            return []
        used: set[str] = set()
        for module in project:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    parts: list[ast.expr] = list(node.args)
                    parts.extend(kw.value for kw in node.keywords)
                elif isinstance(node, ast.Subscript):
                    parts = [node.slice]
                else:
                    continue
                for part in parts:
                    for inner in ast.walk(part):
                        name = None
                        if isinstance(inner, ast.Name):
                            name = inner.id
                        elif isinstance(inner, ast.Attribute):
                            name = inner.attr
                        if name in constants:
                            used.add(name)
        return [
            self.finding(
                stage_module, line,
                f"stage bucket {name} is declared but never attributed "
                "anywhere (no timer measure, setdefault or stage write "
                "passes it); either attribute the stage or delete the "
                "bucket — stage_ms must keep summing to wall clock",
            )
            for name, line in sorted(constants.items())
            if name not in used
        ]


RULE_DESCRIPTIONS: dict[str, str] = {
    "REP000": "file failed to parse (framework)",
    "REP101": WorkerRngRule.summary,
    "REP102": FingerprintPurityRule.summary,
    "REP103": WorkerGrowthRule.summary,
    "REP201": LockDisciplineRule.summary,
    "REP202": LockOrderRule.summary,
    "REP301": SetIterationRule.summary,
    "REP401": MetricNameRule.summary,
    "REP402": ErrorTaxonomyRule.summary,
    "REP403": StageBucketRule.summary,
    "REP501": (
        "a # repro: ignore[...] comment suppressed nothing; stale "
        "suppressions must not outlive their violation (framework)"
    ),
}


def default_rules(config: LintConfig | None = None) -> list[Rule]:
    """The full rule registry, in catalogue order."""
    config = config or LintConfig()
    return [
        WorkerRngRule(config),
        FingerprintPurityRule(config),
        WorkerGrowthRule(config),
        LockDisciplineRule(config),
        LockOrderRule(config),
        SetIterationRule(config),
        MetricNameRule(config),
        ErrorTaxonomyRule(config),
        StageBucketRule(config),
    ]
