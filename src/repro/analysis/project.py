"""Source loading: parsed modules, the import graph and suppressions.

A :class:`Project` is the unit a lint run operates on: every ``*.py``
file under the lint roots, parsed once (``ast`` + ``tokenize``, both
stdlib — the linter is self-hosted and adds no dependencies).  Rules
receive the whole project, so cross-file contracts (RNG reachability
from worker modules, the errors-taxonomy/status-code table, stage-bucket
attribution) are checked against the same universe even when only a
subset of files is *reported on* (``repro lint --changed``).

Modules are addressed two ways:

* by **path suffix** (``store/workers.py``) — how rule configuration
  names contract-bearing files, so test fixtures can mimic the layout
  under a temporary directory; and
* by **dotted module name** guessed from the path (``repro.store.workers``
  for files under a ``src/`` root) — how the import graph resolves
  ``from repro.store import workers`` edges.

Suppressions are ``# repro: ignore[CODE]`` comments (multiple codes
separated by commas; trailing text is the reviewer-facing
justification).  A trailing comment silences its own line; a comment
alone on a line silences the next line; either form also silences a
finding that lists the line among its ``anchor_lines``.  Suppressions
that silence nothing are themselves findings (REP501) — a suppression
must never outlive the violation it was reviewed for.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["Project", "SourceModule", "Suppression", "load_project"]

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore\[\s*([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)\s*\]"
    r"\s*(?P<why>.*)$"
)


@dataclass
class Suppression:
    """One ``# repro: ignore[...]`` comment."""

    path: str
    line: int
    codes: tuple[str, ...]
    standalone: bool  # the comment is alone on its line: covers line+1
    justification: str = ""
    used: bool = field(default=False, compare=False)

    def covers(self, finding: Finding) -> bool:
        if finding.code not in self.codes and "*" not in self.codes:
            return False
        lines = (finding.line,) + finding.anchor_lines
        target = self.line + 1 if self.standalone else self.line
        return target in lines


@dataclass
class SourceModule:
    """One parsed source file."""

    path: Path  # absolute
    display_path: str  # as reported in findings (relative when possible)
    module: str  # dotted-name guess, e.g. "repro.store.workers"
    source: str
    tree: ast.Module
    suppressions: list[Suppression]

    def matches(self, suffix: str) -> bool:
        """True when this file's posix path ends with ``suffix`` on a
        path-component boundary (``errors.py`` matches ``repro/errors.py``
        but not ``apperrors.py``)."""
        posix = self.path.as_posix()
        return posix == suffix or posix.endswith("/" + suffix)


def _module_name(path: Path) -> str:
    """Dotted module name guessed from the path.

    Everything after a ``src`` component forms the name; without one the
    path parts themselves do (fixture trees).  ``__init__.py`` names the
    package.
    """
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    else:
        # keep the last few components; absolute prefixes are noise
        parts = parts[-4:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _scan_suppressions(display_path: str, source: str) -> list[Suppression]:
    suppressions: list[Suppression] = []
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.start[1], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        comments = []
    for line, column, text in comments:
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        codes = tuple(
            code.strip() for code in match.group(1).split(",") if code.strip()
        )
        before = lines[line - 1][:column] if line - 1 < len(lines) else ""
        suppressions.append(
            Suppression(
                path=display_path,
                line=line,
                codes=codes,
                standalone=not before.strip(),
                justification=match.group("why").strip(),
            )
        )
    return suppressions


class Project:
    """The parsed universe one lint run reasons over."""

    def __init__(self, modules: list[SourceModule]) -> None:
        self.modules = modules
        self._by_name = {module.module: module for module in modules}

    def __iter__(self):
        return iter(self.modules)

    def find(self, suffix: str) -> SourceModule | None:
        """The first module whose path ends with ``suffix``."""
        for module in self.modules:
            if module.matches(suffix):
                return module
        return None

    def resolve_module(self, dotted: str) -> SourceModule | None:
        """Resolve an import target to a project module.

        Exact dotted-name match first, then a suffix match on dotted-name
        boundaries so fixture trees (``store.workers``) satisfy imports
        written against the installed layout (``repro.store.workers``).
        """
        exact = self._by_name.get(dotted)
        if exact is not None:
            return exact
        for name, module in self._by_name.items():
            if dotted.endswith("." + name) or name.endswith("." + dotted):
                return module
        return None

    def import_targets(self, module: SourceModule) -> list["SourceModule"]:
        """Project modules ``module`` imports (directly)."""
        targets: list[SourceModule] = []
        seen: set[int] = set()

        def add(dotted: str) -> None:
            resolved = self.resolve_module(dotted)
            if resolved is not None and id(resolved) not in seen:
                seen.add(id(resolved))
                targets.append(resolved)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # relative import: resolve against this module's package
                    package = module.module.split(".")
                    if module.path.name != "__init__.py":
                        package = package[:-1]
                    package = package[: len(package) - (node.level - 1)]
                    base = ".".join(
                        package + ([node.module] if node.module else [])
                    )
                if base:
                    add(base)
                for alias in node.names:
                    if base:
                        add(f"{base}.{alias.name}")
                    elif node.level:
                        add(alias.name)
        return targets

    def reachable_from(self, roots: list[SourceModule]) -> list[SourceModule]:
        """Transitive import closure of ``roots`` (roots included)."""
        seen: dict[int, SourceModule] = {id(root): root for root in roots}
        frontier = list(roots)
        while frontier:
            module = frontier.pop()
            for target in self.import_targets(module):
                if id(target) not in seen:
                    seen[id(target)] = target
                    frontier.append(target)
        return list(seen.values())


def _display_path(path: Path, root: Path | None) -> str:
    try:
        base = root if root is not None else Path.cwd()
        return path.relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


def load_project(files: list[Path], root: Path | None = None) -> Project:
    """Parse ``files`` into a :class:`Project` (files that fail to parse
    become modules with empty trees plus a synthetic REP000 finding —
    surfaced by the linter so a broken file never passes silently)."""
    modules: list[SourceModule] = []
    for path in files:
        path = path.resolve()
        source = path.read_text(encoding="utf-8")
        display = _display_path(path, root)
        try:
            tree = ast.parse(source, filename=str(path))
            error = None
        except SyntaxError as exc:
            tree = ast.Module(body=[], type_ignores=[])
            error = exc
        module = SourceModule(
            path=path,
            display_path=display,
            module=_module_name(path),
            source=source,
            tree=tree,
            suppressions=_scan_suppressions(display, source),
        )
        if error is not None:
            module.parse_error = error  # type: ignore[attr-defined]
        modules.append(module)
    return Project(modules)
