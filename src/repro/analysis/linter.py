"""The lint driver: file discovery, rule execution, suppression
matching, and report assembly.

The one subtlety worth stating: ``--changed`` narrows which files
findings are *reported for*, never which files are *analysed*.  Project
rules (RNG reachability, the error-status table, stage-bucket
attribution) are only meaningful against the full universe under the
lint roots; filtering the universe itself would manufacture false
positives (a STAGE constant "never used" because its use site didn't
change).  So the project always loads everything, and the changed-set
acts as a report filter — including for unused-suppression checks.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.project import Project, Suppression, load_project
from repro.analysis.rules import LintConfig, Rule, default_rules

__all__ = ["LintReport", "changed_files", "discover_files", "lint_paths"]

_SKIP_DIRS = {
    ".git", "__pycache__", ".venv", "venv", "node_modules", "build",
    "dist", ".eggs",
}


def discover_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(
                    part in _SKIP_DIRS for part in candidate.parts
                ):
                    out.add(candidate.resolve())
    return sorted(out)


def changed_files(since: str, root: Path | None = None) -> set[Path] | None:
    """Files changed vs ``since`` (tracked diff + untracked), resolved;
    ``None`` when git is unavailable (caller falls back to a full lint)."""
    cwd = str(root) if root is not None else None
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", since, "--"],
            capture_output=True, text=True, cwd=cwd, check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, cwd=cwd, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    base = root if root is not None else Path.cwd()
    names = diff.stdout.splitlines() + untracked.stdout.splitlines()
    return {(base / name).resolve() for name in names if name.strip()}


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding]
    files_checked: int
    files_reported: int
    suppressed: int = 0
    unused_suppressions: list[Suppression] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "clean": self.clean,
            "files_checked": self.files_checked,
            "files_reported": self.files_reported,
            "suppressed": self.suppressed,
            "findings": [f.as_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        summary = (
            f"{len(self.findings)} {noun} in {self.files_reported} of "
            f"{self.files_checked} files checked"
        )
        if self.suppressed:
            summary += f" ({self.suppressed} suppressed)"
        lines.append(summary)
        return "\n".join(lines)


def _parse_failures(project: Project) -> list[Finding]:
    findings = []
    for module in project:
        error = getattr(module, "parse_error", None)
        if error is not None:
            findings.append(Finding(
                code="REP000",
                message=f"file failed to parse: {error.msg}",
                path=module.display_path,
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
            ))
    return findings


def lint_paths(
    paths: list[Path],
    *,
    config: LintConfig | None = None,
    rules: list[Rule] | None = None,
    root: Path | None = None,
    since: str | None = None,
) -> LintReport:
    """Run the rule registry over ``paths`` and assemble a report.

    ``since`` switches on changed-only reporting: the whole universe is
    still analysed, but findings (and unused-suppression checks) are
    only reported for files changed vs that git ref.
    """
    config = config or LintConfig()
    if rules is None:
        rules = default_rules(config)
    files = discover_files(paths)
    project = load_project(files, root=root)

    report_for: set[str] | None = None
    if since is not None:
        changed = changed_files(since, root=root)
        if changed is not None:
            report_for = {
                module.display_path
                for module in project
                if module.path in changed
            }

    raw: list[Finding] = _parse_failures(project)
    for rule in rules:
        raw.extend(rule.check(project))

    suppressions = [s for module in project for s in module.suppressions]
    by_path: dict[str, list[Suppression]] = {}
    for suppression in suppressions:
        by_path.setdefault(suppression.path, []).append(suppression)

    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        candidates = [
            s for s in by_path.get(finding.path, []) if s.covers(finding)
        ]
        if candidates:
            for suppression in candidates:
                suppression.used = True
            suppressed += 1
            continue
        kept.append(finding)

    unused = [s for s in suppressions if not s.used]
    for suppression in unused:
        codes = ", ".join(suppression.codes)
        kept.append(Finding(
            code="REP501",
            message=(
                f"suppression # repro: ignore[{codes}] matches no "
                "finding; remove it (stale suppressions hide future "
                "violations)"
            ),
            path=suppression.path,
            line=suppression.line,
        ))

    if report_for is not None:
        kept = [f for f in kept if f.path in report_for]
        unused = [s for s in unused if s.path in report_for]

    kept.sort(key=lambda f: f.sort_key())
    return LintReport(
        findings=kept,
        files_checked=len(files),
        files_reported=(
            len(report_for) if report_for is not None else len(files)
        ),
        suppressed=suppressed,
        unused_suppressions=unused,
    )
