"""QGA analog — keyword-driven query-graph assembly.

QGA (Han et al., CIKM 2017) assembles a query graph from keywords and
evaluates it.  The assembly step is lossy: the chosen predicates are those
whose *names* share tokens with the query keywords, not those that are
semantically equivalent.  Our analog tokenises the query predicate(s) and
admits any candidate connected to the mapping node through a path whose
predicates all have token overlap (or whose best token-overlap product
clears a threshold) — a deliberately string-level approximation that
produces the largest errors of the comparator set, as in Tables VI/VII.
"""

from __future__ import annotations

import re

from repro.baselines.base import BaselineMethod
from repro.kg.graph import KnowledgeGraph
from repro.query.aggregate import AggregateQuery
from repro.query.graph import PathQuery
from repro.sampling.scope import build_scope, resolve_mapping_node

_TOKEN_PATTERN = re.compile(r"[a-z]+")


def tokenize(predicate: str) -> frozenset[str]:
    """Lower-cased word tokens of a predicate name (camelCase/snake split)."""
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", predicate)
    return frozenset(_TOKEN_PATTERN.findall(spaced.lower()))


def token_overlap(left: frozenset[str], right: frozenset[str]) -> float:
    """Jaccard overlap of token sets."""
    if not left or not right:
        return 0.0
    return len(left & right) / len(left | right)


class QgaBaseline(BaselineMethod):
    """Keyword overlap matching over the n-bounded neighbourhood."""

    method_name = "QGA"

    def __init__(
        self,
        kg: KnowledgeGraph,
        *,
        n_bound: int = 3,
        overlap_threshold: float = 0.34,
    ) -> None:
        super().__init__(kg)
        self.n_bound = n_bound
        self.overlap_threshold = overlap_threshold

    def _component_answers(self, component: PathQuery) -> set[int]:
        source = resolve_mapping_node(
            self._kg, component.specific_name, component.specific_types
        )
        target_types = component.target_types
        query_tokens = [tokenize(predicate) for predicate in component.predicates]
        scope = build_scope(self._kg, source, self.n_bound, target_types)

        # BFS over the scope keeping the best keyword-overlap seen on the
        # way; a candidate qualifies if it is reachable through edges of
        # which at least one overlaps any query keyword strongly enough.
        best_overlap: dict[int, float] = {source: 0.0}
        frontier = [source]
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                for edge_id, neighbour in self._kg.neighbors(node):
                    if neighbour not in scope.distances:
                        continue
                    predicate_tokens = tokenize(self._kg.edge(edge_id).predicate)
                    overlap = max(
                        token_overlap(predicate_tokens, tokens)
                        for tokens in query_tokens
                    )
                    score = max(best_overlap[node], overlap)
                    if score > best_overlap.get(neighbour, -1.0):
                        best_overlap[neighbour] = score
                        next_frontier.append(neighbour)
            frontier = next_frontier

        return {
            node
            for node in scope.candidate_answers
            if best_overlap.get(node, 0.0) >= self.overlap_threshold
        }

    def collect_answers(self, aggregate_query: AggregateQuery) -> set[int]:
        """The factoid answer set for the query graph (BaselineMethod hook)."""
        components = aggregate_query.query.components
        answers = self._component_answers(components[0])
        for component in components[1:]:
            answers &= self._component_answers(component)
            if not answers:
                break
        return answers
