"""Comparator systems from the paper's evaluation (§VII-A).

* :mod:`repro.baselines.ssb` — Algorithm 1, the exact semantic-similarity
  baseline; doubles as the tau-GT oracle.
* :mod:`repro.baselines.sparql` — exact-schema BGP engine standing in for
  JENA and Virtuoso/Neo4j.
* :mod:`repro.baselines.sgq` — incremental top-k semantic search.
* :mod:`repro.baselines.grab` — structural-similarity matching.
* :mod:`repro.baselines.qga` — keyword-driven query-graph assembly.
* :mod:`repro.baselines.eaq` — link-prediction-based aggregate answering.

Every baseline exposes ``answer(aggregate_query) -> BaselineAnswer`` so the
benchmark harness can treat them uniformly.
"""

from repro.baselines.base import BaselineAnswer, BaselineMethod
from repro.baselines.eaq import EaqBaseline
from repro.baselines.grab import GrabBaseline
from repro.baselines.qga import QgaBaseline
from repro.baselines.sgq import SgqBaseline
from repro.baselines.sparql import SparqlStyleEngine
from repro.baselines.ssb import SemanticSimilarityBaseline, tau_ground_truth

__all__ = [
    "BaselineAnswer",
    "BaselineMethod",
    "SemanticSimilarityBaseline",
    "tau_ground_truth",
    "SparqlStyleEngine",
    "SgqBaseline",
    "GrabBaseline",
    "QgaBaseline",
    "EaqBaseline",
]
