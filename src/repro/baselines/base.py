"""Shared surface for the comparator systems."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.kg.graph import KnowledgeGraph
from repro.query.aggregate import AggregateQuery
from repro.query.evaluate import aggregate_over, is_usable_answer


@dataclass(frozen=True)
class BaselineAnswer:
    """What a comparator returns: a value, its answer set, and timing."""

    method: str
    value: float
    answers: frozenset[int]
    elapsed_seconds: float
    #: per-group values for GROUP-BY queries (empty otherwise)
    groups: dict[float, float] = field(default_factory=dict)

    def relative_error(self, ground_truth: float) -> float:
        """|value - truth| / |truth| against any ground truth."""
        if ground_truth == 0.0:
            return 0.0 if self.value == 0.0 else float("inf")
        return abs(self.value - ground_truth) / abs(ground_truth)


class BaselineMethod(abc.ABC):
    """A comparator system: finds an answer set, aggregates it exactly.

    Subclasses implement :meth:`collect_answers`; the base class applies
    filters, evaluates the aggregate (and GROUP-BY partitions) and wraps
    timing — mirroring how the paper extends factoid-query systems "by
    adding an additional aggregate operation after achieving the factoid
    query answers".
    """

    method_name: str = "baseline"

    def __init__(self, kg: KnowledgeGraph) -> None:
        self._kg = kg

    @property
    def kg(self) -> KnowledgeGraph:
        """The knowledge graph this method answers over."""
        return self._kg

    @abc.abstractmethod
    def collect_answers(self, aggregate_query: AggregateQuery) -> set[int]:
        """The factoid answer set for the aggregate query's query graph."""

    def answer(self, aggregate_query: AggregateQuery) -> BaselineAnswer:
        """Run the factoid stage, filter, aggregate, and time the whole."""
        started = time.perf_counter()
        answers = self.collect_answers(aggregate_query)
        answers = {
            node_id
            for node_id in answers
            if self._usable(aggregate_query, node_id)
        }
        value, groups = self._aggregate(aggregate_query, answers)
        elapsed = time.perf_counter() - started
        return BaselineAnswer(
            method=self.method_name,
            value=value,
            answers=frozenset(answers),
            elapsed_seconds=elapsed,
            groups=groups,
        )

    # ------------------------------------------------------------------
    def _usable(self, aggregate_query: AggregateQuery, node_id: int) -> bool:
        return is_usable_answer(self._kg, aggregate_query, node_id)

    def _aggregate(
        self, aggregate_query: AggregateQuery, answers: set[int]
    ) -> tuple[float, dict[float, float]]:
        return aggregate_over(self._kg, aggregate_query, answers)


def require_simple(aggregate_query: AggregateQuery, method: str) -> None:
    """Raise for comparators that only support simple queries (e.g. EAQ)."""
    query = aggregate_query.query
    if query.is_composite or not query.components[0].is_simple:
        raise QueryError(
            f"{method} supports simple (single-edge) queries only; "
            f"got shape {query.shape.value}"
        )
