"""EAQ analog — link-prediction-based aggregate answering.

EAQ (Li, Ge & Chen, ICDE 2020) collects candidate entities via embedding
link prediction and aggregates over them.  Our analog scores every
candidate triple ``(candidate, query_predicate, us)`` (both orientations)
with a trained triple-scoring model and admits candidates whose best score
clears an absolute threshold calibrated from the model's positive triples.

Characteristics the paper attributes to EAQ are preserved:

* **simple queries only** — no edge-to-path mapping, so chains/stars raise;
* **no user accuracy contract** — no error bound or confidence level;
* lower answer quality: link prediction confuses semantically related but
  incorrect neighbours, and misses answers whose connection is a
  multi-edge path.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod, require_simple
from repro.embedding.base import EmbeddingModel
from repro.errors import EmbeddingError
from repro.kg.graph import KnowledgeGraph
from repro.query.aggregate import AggregateQuery
from repro.sampling.scope import build_scope, resolve_mapping_node


class EaqBaseline(BaselineMethod):
    """Link-prediction candidate collection + exact aggregation."""

    method_name = "EAQ"

    def __init__(
        self,
        kg: KnowledgeGraph,
        model: EmbeddingModel,
        *,
        n_bound: int = 3,
        score_quantile: float = 0.9,
    ) -> None:
        super().__init__(kg)
        if not 0.0 < score_quantile < 1.0:
            raise ValueError("score_quantile must be in (0, 1)")
        self._model = model
        self.n_bound = n_bound
        self.score_quantile = score_quantile
        self._threshold_cache: dict[int, float] = {}

    def _score_threshold(self, predicate_id: int) -> float:
        """Score at the configured quantile of the predicate's true triples.

        Candidates scoring better (lower) than most known positives are
        predicted links; the quantile controls precision vs. recall.
        """
        cached = self._threshold_cache.get(predicate_id)
        if cached is not None:
            return cached
        predicate = self._kg.predicate_name(predicate_id)
        edge_ids = self._kg.edges_with_predicate(predicate)
        if not edge_ids:
            raise EmbeddingError(
                f"predicate {predicate!r} has no triples to calibrate on"
            )
        heads = np.array([self._kg.edge(e).subject for e in edge_ids])
        tails = np.array([self._kg.edge(e).object for e in edge_ids])
        relations = np.full(len(edge_ids), predicate_id)
        scores = self._model.score(heads, relations, tails)
        threshold = float(np.quantile(scores, self.score_quantile))
        self._threshold_cache[predicate_id] = threshold
        return threshold

    def collect_answers(self, aggregate_query: AggregateQuery) -> set[int]:
        """The factoid answer set for the query graph (BaselineMethod hook)."""
        require_simple(aggregate_query, self.method_name)
        component = aggregate_query.query.components[0]
        predicate, target_types = component.hops[0]
        source = resolve_mapping_node(
            self._kg, component.specific_name, component.specific_types
        )
        if not self._kg.has_predicate(predicate):
            return set()
        predicate_id = self._kg.predicate_id(predicate)
        threshold = self._score_threshold(predicate_id)

        scope = build_scope(self._kg, source, self.n_bound, target_types)
        candidates = np.asarray(scope.candidate_answers, dtype=np.int64)
        if candidates.size == 0:
            return set()
        relations = np.full(candidates.size, predicate_id)
        sources = np.full(candidates.size, source)
        forward = self._model.score(candidates, relations, sources)
        backward = self._model.score(sources, relations, candidates)
        best = np.minimum(forward, backward)
        return {int(node) for node in candidates[best <= threshold]}
