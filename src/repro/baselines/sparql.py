"""Exact-schema SPARQL-style engine (the paper's JENA / Virtuoso rows).

Evaluates the query graph as a basic graph pattern with *exact* predicate
matching: a query edge ``(qs) -[product]-> (?t)`` only matches KG triples
whose predicate is literally ``product`` (in either direction, with the
target type check).  Schema-flexible answers — connected through synonym
predicates or multi-edge paths — are invisible to it, which is exactly why
the paper's Tables VI/VII show double-digit relative errors for the RDF
stores despite their answers being "exact".
"""

from __future__ import annotations

from repro.baselines.base import BaselineMethod
from repro.kg.graph import KnowledgeGraph
from repro.query.aggregate import AggregateQuery
from repro.query.graph import PathQuery
from repro.sampling.scope import resolve_mapping_node


class SparqlStyleEngine(BaselineMethod):
    """Conjunctive BGP evaluation with exact predicate names."""

    method_name = "SPARQL"

    def __init__(self, kg: KnowledgeGraph, *, label: str = "SPARQL") -> None:
        super().__init__(kg)
        self.method_name = label

    def _expand_hop(
        self, frontier: set[int], predicate: str, node_types: frozenset[str]
    ) -> set[int]:
        """One BGP join step: follow exact-predicate edges, check types."""
        reached: set[int] = set()
        for node in frontier:
            for matched in self._kg.objects_of(node, predicate):
                reached.add(matched)
            for matched in self._kg.subjects_of(node, predicate):
                reached.add(matched)
        return {
            node
            for node in reached
            if self._kg.node(node).shares_type_with(node_types)
        }

    def _component_answers(self, component: PathQuery) -> set[int]:
        source = resolve_mapping_node(
            self._kg, component.specific_name, component.specific_types
        )
        frontier = {source}
        for predicate, node_types in component.hops:
            frontier = self._expand_hop(frontier, predicate, node_types)
            if not frontier:
                return set()
        frontier.discard(source)
        return frontier

    def collect_answers(self, aggregate_query: AggregateQuery) -> set[int]:
        """The factoid answer set for the query graph (BaselineMethod hook)."""
        components = aggregate_query.query.components
        answers = self._component_answers(components[0])
        for component in components[1:]:
            answers &= self._component_answers(component)
            if not answers:
                break
        return answers
