"""GraB analog — structural-similarity graph matching.

GraB (Jin et al., WWW 2015) ranks matches by *structural* similarity:
shorter connections score higher, predicates' semantics are ignored.  Our
analog scores a candidate ``delta^(dist - 1)`` (distance = hop count from
the mapping node) and admits candidates whose score clears a structural
threshold.  Chains multiply per-hop scores via typed waypoints.

Because path length correlates only loosely with semantic similarity (the
paper's §III remark 1), GraB both misses long-path correct answers and
admits short-path incorrect ones — the source of its Table VI/VII errors.
"""

from __future__ import annotations

from repro.baselines.base import BaselineMethod
from repro.kg.graph import KnowledgeGraph
from repro.kg.traversal import hop_distances
from repro.query.aggregate import AggregateQuery
from repro.query.graph import PathQuery
from repro.sampling.scope import resolve_mapping_node


class GrabBaseline(BaselineMethod):
    """Distance-decay structural matching."""

    method_name = "GraB"

    def __init__(
        self,
        kg: KnowledgeGraph,
        *,
        decay: float = 0.5,
        threshold: float = 0.25,
        n_bound: int = 3,
    ) -> None:
        super().__init__(kg)
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = decay
        self.threshold = threshold
        self.n_bound = n_bound

    def _component_answers(self, component: PathQuery) -> set[int]:
        source = resolve_mapping_node(
            self._kg, component.specific_name, component.specific_types
        )
        # Chains walk hop by hop through typed frontiers; simple queries
        # have a single frontier step.
        frontier = {source}
        for hop_index, (_predicate, node_types) in enumerate(component.hops):
            reached: set[int] = set()
            for start in frontier:
                distances = hop_distances(self._kg, start, self.n_bound)
                for node, distance in distances.items():
                    if node == start or distance == 0:
                        continue
                    score = self.decay ** (distance - 1)
                    if score < self.threshold:
                        continue
                    if self._kg.node(node).shares_type_with(node_types):
                        reached.add(node)
            if not reached:
                return set()
            frontier = reached
        frontier.discard(source)
        return frontier

    def collect_answers(self, aggregate_query: AggregateQuery) -> set[int]:
        """The factoid answer set for the query graph (BaselineMethod hook)."""
        components = aggregate_query.query.components
        answers = self._component_answers(components[0])
        for component in components[1:]:
            answers &= self._component_answers(component)
            if not answers:
                break
        return answers
