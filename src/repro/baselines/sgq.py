"""SGQ analog — incremental top-k semantic similarity search.

SGQ (Wang et al., ICDE 2020) retrieves the k most semantically similar
answers and can grow k incrementally.  The paper's §VII protocol: start at
k = 50, increase in steps of 50 until every correct answer (similarity >=
tau) is inside the top-k — at which point the final batch drags in some
incorrect answers whose similarity is below tau, giving SGQ its small but
non-zero relative error.

Our analog computes the exact similarity ranking (sharing SSB's
enumeration machinery but with a bounded expansion budget, reflecting
SGQ's pruned search) and replays that incremental protocol.
"""

from __future__ import annotations

from repro.baselines.base import BaselineMethod
from repro.baselines.ssb import SemanticSimilarityBaseline
from repro.embedding.predicate_space import PredicateVectorSpace
from repro.kg.graph import KnowledgeGraph
from repro.query.aggregate import AggregateQuery

#: expansion budget reflecting SGQ's pruned (non-exhaustive) search
DEFAULT_SGQ_EXPANSIONS = 60_000


class SgqBaseline(BaselineMethod):
    """Top-k retrieval with k grown in steps of ``k_step``."""

    method_name = "SGQ"

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        *,
        tau: float = 0.85,
        n_bound: int = 3,
        k_step: int = 50,
        max_expansions: int = DEFAULT_SGQ_EXPANSIONS,
    ) -> None:
        super().__init__(kg)
        self._ranker = SemanticSimilarityBaseline(
            kg, space, tau=tau, n_bound=n_bound, max_expansions=max_expansions
        )
        self.tau = tau
        self.k_step = k_step

    def collect_answers(self, aggregate_query: AggregateQuery) -> set[int]:
        """The factoid answer set for the query graph (BaselineMethod hook)."""
        similarities = self._ranker.answer_similarities(aggregate_query.query)
        ranked = sorted(similarities.items(), key=lambda item: (-item[1], item[0]))
        num_correct = sum(1 for _, similarity in ranked if similarity >= self.tau)
        if num_correct == 0:
            return set()
        # Grow k by k_step until all correct answers are inside the top-k;
        # the last batch may include sub-tau answers (the paper's point).
        k = self.k_step
        while k < num_correct:
            k += self.k_step
        k = min(k, len(ranked))
        return {node for node, _similarity in ranked[:k]}
