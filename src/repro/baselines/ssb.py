"""SSB — the Semantic Similarity-based Baseline (paper Algorithm 1).

Enumerates every candidate answer in the n-bounded subgraph of the mapping
node, computes each candidate's exact Eq. 3 similarity by exhaustive path
enumeration, keeps those with similarity >= tau, and aggregates exactly.
Slow by design — its output *is* the tau-relevant ground truth (tau-GT)
used throughout the paper's effectiveness evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.base import BaselineMethod
from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import QueryError
from repro.kg.graph import KnowledgeGraph
from repro.query.aggregate import AggregateQuery, exact_aggregate
from repro.query.graph import PathQuery, QueryGraph
from repro.sampling.scope import build_scope, resolve_mapping_node
from repro.semantics.matching import best_matches_from


@dataclass(frozen=True)
class GroundTruth:
    """tau-GT: the exact value plus the correct answers behind it."""

    value: float
    answers: frozenset[int]
    similarities: dict[float, float] | dict[int, float]
    groups: dict[float, float]


class SemanticSimilarityBaseline(BaselineMethod):
    """Algorithm 1, extended to every query shape for ground-truthing."""

    method_name = "SSB"

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        *,
        tau: float = 0.85,
        n_bound: int = 3,
        max_expansions: int | None = None,
    ) -> None:
        super().__init__(kg)
        self._space = space
        self.tau = tau
        self.n_bound = n_bound
        self.max_expansions = max_expansions
        self._match_cache: dict[tuple[int, str], dict[int, float]] = {}

    # ------------------------------------------------------------------
    # Similarity enumeration
    # ------------------------------------------------------------------
    def _matches_from(self, source: int, predicate: str) -> dict[int, tuple[float, int]]:
        """Best Eq. 3 similarity (and its path length) per reachable node."""
        key = (source, predicate)
        cached = self._match_cache.get(key)
        if cached is None:
            matches = best_matches_from(
                self._kg,
                self._space,
                predicate,
                source,
                self.n_bound,
                max_expansions=self.max_expansions,
            )
            cached = {
                node: (match.similarity, match.length)
                for node, match in matches.items()
            }
            self._match_cache[key] = cached
        return cached

    def component_similarities(self, component: PathQuery) -> dict[int, float]:
        """Exact answer similarities for one query component.

        Simple components follow Eq. 2-3 directly.  Chain components take,
        per answer, the best route through typed intermediates: similarity
        is the geometric mean over all legs' best paths (each leg compared
        to its own query predicate, §V-B).
        """
        source = resolve_mapping_node(
            self._kg, component.specific_name, component.specific_types
        )
        if component.is_simple:
            predicate, target_types = component.hops[0]
            matches = self._matches_from(source, predicate)
            return {
                node: similarity
                for node, (similarity, _length) in matches.items()
                if node != source
                and self._kg.node(node).shares_type_with(target_types)
            }
        return self._chain_similarities(source, component)

    def _chain_similarities(
        self, source: int, component: PathQuery
    ) -> dict[int, float]:
        # route state: node -> best (log_similarity_sum, edge_count); the
        # geometric mean is only taken at the very end so that each leg
        # weighs in proportionally to its edge count — Eq. 2 applied to the
        # concatenated path, matching the engine's chain validation.
        frontier: dict[int, tuple[float, int]] = {source: (0.0, 0)}
        for predicate, node_types in component.hops:
            next_frontier: dict[int, tuple[float, int]] = {}
            for start, (log_sum, edges) in frontier.items():
                scope = build_scope(self._kg, start, self.n_bound, node_types)
                leg = self._matches_from(start, predicate)
                for node in scope.candidate_answers:
                    match = leg.get(node)
                    if match is None:
                        continue
                    similarity, length = match
                    if similarity <= 0.0 or length == 0:
                        continue
                    candidate = (
                        log_sum + length * math.log(similarity),
                        edges + length,
                    )
                    best = next_frontier.get(node)
                    if best is None or candidate[0] / candidate[1] > best[0] / best[1]:
                        next_frontier[node] = candidate
            if not next_frontier:
                return {}
            frontier = next_frontier
        return {
            node: math.exp(log_sum / edges)
            for node, (log_sum, edges) in frontier.items()
            if edges > 0
        }

    def answer_similarities(self, query: QueryGraph) -> dict[int, float]:
        """Per-answer similarity; composite shapes take the component min."""
        combined: dict[int, float] | None = None
        for component in query.components:
            similarities = self.component_similarities(component)
            if combined is None:
                combined = similarities
                continue
            combined = {
                node: min(similarity, similarities[node])
                for node, similarity in combined.items()
                if node in similarities
            }
        return combined or {}

    # ------------------------------------------------------------------
    # BaselineMethod surface
    # ------------------------------------------------------------------
    def collect_answers(self, aggregate_query: AggregateQuery) -> set[int]:
        """The factoid answer set for the query graph (BaselineMethod hook)."""
        similarities = self.answer_similarities(aggregate_query.query)
        return {
            node
            for node, similarity in similarities.items()
            if similarity >= self.tau
        }

    # ------------------------------------------------------------------
    # Ground-truth helper
    # ------------------------------------------------------------------
    def ground_truth(self, aggregate_query: AggregateQuery) -> GroundTruth:
        """tau-GT = f_a over the tau-relevant correct answers (Table I)."""
        answers = {
            node
            for node in self.collect_answers(aggregate_query)
            if self._usable(aggregate_query, node)
        }
        value, groups = self._aggregate(aggregate_query, answers)
        similarities = self.answer_similarities(aggregate_query.query)
        return GroundTruth(
            value=value,
            answers=frozenset(answers),
            similarities={node: similarities[node] for node in answers},
            groups=groups,
        )


def tau_ground_truth(
    kg: KnowledgeGraph,
    space: PredicateVectorSpace,
    aggregate_query: AggregateQuery,
    *,
    tau: float = 0.85,
    n_bound: int = 3,
) -> GroundTruth:
    """Convenience wrapper building a fresh SSB for one query."""
    baseline = SemanticSimilarityBaseline(kg, space, tau=tau, n_bound=n_bound)
    truth = baseline.ground_truth(aggregate_query)
    if not truth.answers and aggregate_query.function.needs_attribute:
        raise QueryError(
            "tau-GT is undefined: no correct answer carries the attribute "
            f"{aggregate_query.attribute!r}"
        )
    return truth
