"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``query``      — parse AQL string(s) and run them on a synthetic dataset,
  printing the approximate result (and optionally the exact tau-GT);
  several queries (or ``--batch``) go through the serving layer, which
  interleaves their rounds over shared plans.
* ``serve``      — read AQL queries from stdin and serve them concurrently
  through :class:`AggregateQueryService`, reporting per-round progress;
  ``--backend threads|processes --workers N`` fans rounds out to a pool.
* ``snapshot``   — save/load a dataset's CSR snapshot (and optionally plan
  artifacts) through a :class:`repro.store.SnapshotCatalog`, so later
  invocations memory-map S1 instead of recompiling it.
* ``datasets``   — list the bundled synthetic datasets with their sizes.
* ``experiment`` — regenerate one paper table/figure by name (``--list``
  shows all names; ``--plot`` adds an ASCII chart for figures).
* ``workload``   — run (a slice of) the standard benchmark workload.

The CLI is a thin layer over the public API; everything it does can be
done in a few lines of Python (see ``examples/``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Sequence

from repro.bench import experiments as _experiments
from repro.bench.plots import Series, line_chart
from repro.core.config import EngineConfig
from repro.core.engine import ApproximateAggregateEngine
from repro.core.resilience import ServiceLimits
from repro.core.result import ApproximateResult, GroupedResult
from repro.core.service import AggregateQueryService
from repro.errors import ReproError
from repro.query.parser import parse_query

#: experiment name -> driver; names match the benches under benchmarks/
EXPERIMENTS: dict[str, Callable[..., "_experiments.ExperimentResult"]] = {
    "table5": _experiments.table5_ajs,
    "table6": _experiments.table6_tau_gt_error,
    "table7": _experiments.table7_ha_gt_error,
    "table8": _experiments.table8_response_time,
    "table9": _experiments.table9_case_study,
    "table10": _experiments.table10_operator_time,
    "table11": _experiments.table11_operator_error,
    "table12": _experiments.table12_step_timing,
    "table13": _experiments.table13_embeddings,
    "fig5a": _experiments.fig5a_sampling_ablation,
    "fig5b": _experiments.fig5b_validation_ablation,
    "fig5c": _experiments.fig5c_delta_ablation,
    "fig6a": _experiments.fig6a_interactive,
    "fig6b": _experiments.fig6b_confidence_level,
    "fig6c": _experiments.fig6c_repeat_factor,
    "fig6d": _experiments.fig6d_sample_ratio,
    "fig6e": _experiments.fig6e_nbound,
    "fig6f": _experiments.fig6f_tau_threshold,
    "scaling": _experiments.scaling_crossover,
    "ext_evt": _experiments.ext_evt_extremes,
    "ext_normalization": _experiments.ext_normalization,
}


def _dataset_registry() -> dict[str, Callable]:
    from repro.datasets import ALL_PRESETS

    return dict(ALL_PRESETS)


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """Execution-backend flags shared by the serving commands."""
    parser.add_argument(
        "--backend",
        choices=["cooperative", "threads", "processes"],
        default="cooperative",
        help="how scheduler slots execute: the scheduler thread itself "
        "(default), a thread pool, or worker processes attached to the "
        "shared snapshot store",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for the threads/processes backends (default: CPU count)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-query wall-clock budget; past it a query settles as "
        "DeadlineExceededError carrying its last anytime estimate + CI "
        "(default: no deadline)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help="admission control: live queries accepted before the service "
        "sheds submissions with ServiceOverloadedError (default: unlimited)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate aggregate queries on knowledge graphs "
        "(ICDE 2022 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="run AQL aggregate queries")
    query.add_argument("aql", nargs="+",
                       help='e.g. "AVG(price) MATCH (Germany:Country)'
                       '-[product]->(x:Automobile)"; several queries are '
                       "served as one concurrent batch")
    query.add_argument("--dataset", default="dbpedia-like")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--scale", type=float, default=1.0)
    query.add_argument("--error-bound", type=float, default=0.01)
    query.add_argument("--confidence", type=float, default=0.95)
    query.add_argument("--tau", type=float, default=0.85)
    query.add_argument(
        "--batch",
        action="store_true",
        help="route through the serving layer even for a single query",
    )
    _add_backend_arguments(query)
    query.add_argument(
        "--ground-truth",
        action="store_true",
        help="also compute the exact tau-GT via SSB (slow) and the error",
    )
    query.add_argument(
        "--trace", action="store_true", help="print the per-round refinement trace"
    )

    serve = commands.add_parser(
        "serve",
        help="serve AQL queries from stdin (one per line, one JSON result "
        "line each) or over HTTP/SSE with --http HOST:PORT",
    )
    serve.add_argument(
        "--http",
        metavar="HOST:PORT",
        default=None,
        help="serve over HTTP instead of stdin: POST /v1/queries, "
        "per-round SSE at /v1/queries/{id}/events, /healthz "
        "(port 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--quota-rps",
        type=float,
        default=None,
        metavar="RATE",
        help="HTTP mode: per-client token-bucket rate (requests/second) "
        "shedding with 429 before the service queue fills "
        "(default: no per-client quota)",
    )
    serve.add_argument(
        "--quota-burst",
        type=int,
        default=10,
        metavar="N",
        help="HTTP mode: per-client burst size for --quota-rps (default: 10)",
    )
    serve.add_argument("--dataset", default="dbpedia-like")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--scale", type=float, default=1.0)
    serve.add_argument("--error-bound", type=float, default=0.01)
    serve.add_argument("--confidence", type=float, default=0.95)
    serve.add_argument("--tau", type=float, default=0.85)
    serve.add_argument(
        "--trace", action="store_true", help="print each query's round trace"
    )
    serve.add_argument(
        "--audit-log",
        metavar="PATH",
        default=None,
        help="append one JSON line per settled query (query, backend, "
        "rounds, per-stage ms, retries, estimate + CI) to this file",
    )
    serve.add_argument(
        "--audit-log-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="rotate the --audit-log file to PATH.1 before a write would "
        "push it past N bytes (one rotated generation kept; "
        "default: no rotation)",
    )
    _add_backend_arguments(serve)

    metrics = commands.add_parser(
        "metrics",
        help="fetch a running server's /metrics (Prometheus text format)",
    )
    metrics.add_argument(
        "address", metavar="HOST:PORT", help="a repro serve --http address"
    )

    snapshot = commands.add_parser(
        "snapshot",
        help="save/load CSR snapshots + plan artifacts through a catalog",
    )
    snapshot.add_argument("action", choices=["save", "load"])
    snapshot.add_argument("path", help="catalog root directory")
    snapshot.add_argument("--dataset", default="dbpedia-like")
    snapshot.add_argument("--seed", type=int, default=0)
    snapshot.add_argument("--scale", type=float, default=1.0)
    snapshot.add_argument(
        "--plan",
        action="append",
        default=[],
        metavar="AQL",
        help="also save/load the S1 plan artifacts of this AQL query "
        "(repeatable)",
    )
    snapshot.add_argument(
        "--verify-fingerprint",
        action="store_true",
        help="on load: additionally check the graph content hash",
    )

    commands.add_parser("datasets", help="list the synthetic datasets")

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table or figure"
    )
    experiment.add_argument("name", nargs="?", help="e.g. table6, fig6b, scaling")
    experiment.add_argument("--list", action="store_true", help="list experiments")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--plot",
        action="store_true",
        help="for figures: also draw an ASCII chart of the first series group",
    )

    workload = commands.add_parser(
        "workload", help="run part of the standard benchmark workload"
    )
    workload.add_argument("--dataset", default="dbpedia-like")
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--limit", type=int, default=5)
    workload.add_argument(
        "--shape", choices=["simple", "chain", "star", "cycle", "flower"]
    )

    export = commands.add_parser(
        "export", help="write a synthetic dataset's KG to disk"
    )
    export.add_argument("path", help="output file; format chosen by --format")
    export.add_argument("--dataset", default="dbpedia-like")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--scale", type=float, default=1.0)
    export.add_argument(
        "--format",
        choices=["json", "triples", "graphml"],
        default="json",
        help="json = full fidelity; triples = TSV (names/predicates only); "
        "graphml = via NetworkX for external tooling",
    )

    lint = commands.add_parser(
        "lint",
        help="statically check the concurrency & determinism contracts "
        "(see repro.analysis; also python -m repro.analysis)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------
def _load_bundle(args: argparse.Namespace):
    """The dataset bundle named by ``args``, or None (error printed)."""
    presets = _dataset_registry()
    if args.dataset not in presets:
        print(
            f"unknown dataset {args.dataset!r}; choose from "
            f"{', '.join(sorted(presets))}",
            file=sys.stderr,
        )
        return None
    return presets[args.dataset](seed=args.seed, scale=args.scale)


def _query_config(args: argparse.Namespace) -> EngineConfig:
    return EngineConfig(
        error_bound=args.error_bound,
        confidence_level=args.confidence,
        tau=args.tau,
        seed=args.seed,
    )


def _print_round_trace(result: ApproximateResult | GroupedResult) -> None:
    print("\nround  estimate        MoE        satisfied   ms")
    for trace in result.rounds:
        # extreme rounds carry no CI: render the no-guarantee marker, not
        # a number (their moe is the 0.0 sentinel, never NaN)
        moe_text = (
            f"{trace.moe:>9,.2f}" if trace.guaranteed else f"{'n/a':>9}"
        )
        print(
            f"{trace.round_index:>5}  {trace.estimate:>12,.2f}"
            f"  {moe_text}  {trace.satisfied!s:<9}"
            f" {trace.seconds * 1e3:>6,.1f}"
        )


def _cmd_query(args: argparse.Namespace) -> int:
    bundle = _load_bundle(args)
    if bundle is None:
        return 2
    queries = [parse_query(aql) for aql in args.aql]
    config = _query_config(args)
    print(f"dataset: {bundle.name} ({bundle.kg.num_nodes:,} nodes, "
          f"{bundle.kg.num_edges:,} edges)")
    if (
        len(queries) > 1
        or args.batch
        or args.backend != "cooperative"
        or args.workers is not None
        or args.deadline is not None
        or args.max_pending is not None
    ):
        # a requested execution backend always routes through the serving
        # layer — silently ignoring --backend/--workers (or the serving
        # limits --deadline/--max-pending) for a lone query would run the
        # wrong execution mode
        return _run_query_batch(bundle, config, queries, args)
    aggregate_query = queries[0]
    engine = ApproximateAggregateEngine(bundle.kg, bundle.embedding, config=config)
    print(f"query:   {aggregate_query.describe()}")
    started = time.perf_counter()
    result = engine.execute(aggregate_query)
    elapsed_ms = (time.perf_counter() - started) * 1e3
    if isinstance(result, GroupedResult):
        print(result.describe())
        if args.trace:
            _print_round_trace(result)
    else:
        print(f"result:  {result.describe()}")
        if args.trace:
            _print_round_trace(result)
    print(f"time:    {elapsed_ms:,.1f} ms")
    if args.ground_truth and isinstance(result, ApproximateResult):
        from repro.baselines.ssb import tau_ground_truth

        truth = tau_ground_truth(bundle.kg, bundle.space(), aggregate_query,
                                 tau=args.tau)
        print(f"tau-GT:  {truth.value:,.2f}   "
              f"error: {result.relative_error(truth.value):.2%}")
    return 0


def _run_query_batch(bundle, config: EngineConfig, queries, args) -> int:
    """Serve ``queries`` as one concurrent batch and print each result."""
    started = time.perf_counter()
    with AggregateQueryService(
        bundle.kg,
        bundle.embedding,
        config,
        backend=getattr(args, "backend", "cooperative"),
        workers=getattr(args, "workers", None),
        default_deadline=getattr(args, "deadline", None),
        limits=ServiceLimits(max_pending=getattr(args, "max_pending", None)),
    ) as service:
        handles = service.submit_batch(queries)
        exit_code = 0
        for position, handle in enumerate(handles):
            label = f"[{position + 1}/{len(handles)}]"
            print(f"\n{label} {handle.query.describe()}")
            try:
                result = handle.result()
            except ReproError as exc:
                print(f"{label} error: {exc}", file=sys.stderr)
                exit_code = 1
                continue
            print(f"{label} {result.describe()}")
            if args.trace:
                _print_round_trace(result)
            if args.ground_truth and isinstance(result, ApproximateResult):
                from repro.baselines.ssb import tau_ground_truth

                truth = tau_ground_truth(
                    bundle.kg, bundle.space(), handle.query, tau=args.tau
                )
                print(f"{label} tau-GT: {truth.value:,.2f}   "
                      f"error: {result.relative_error(truth.value):.2%}")
    elapsed_ms = (time.perf_counter() - started) * 1e3
    print(f"\nbatch time: {elapsed_ms:,.1f} ms ({len(handles)} queries, "
          "rounds interleaved over shared plans)")
    return exit_code


def _service_for(bundle, config: EngineConfig, args) -> AggregateQueryService:
    """A service wired up with the shared serving flags."""
    return AggregateQueryService(
        bundle.kg,
        bundle.embedding,
        config,
        backend=args.backend,
        workers=args.workers,
        default_deadline=args.deadline,
        limits=ServiceLimits(max_pending=args.max_pending),
        audit_log=getattr(args, "audit_log", None),
        audit_log_max_bytes=getattr(args, "audit_log_max_bytes", None),
    )


def _print_health(service: AggregateQueryService) -> None:
    """Dump ``service.health()`` to stderr (the SIGINT farewell)."""
    import json

    print(
        "health: " + json.dumps(service.health(), sort_keys=True),
        file=sys.stderr,
    )


def _wait_for_interrupt(runner) -> None:
    """Block until SIGINT stops the HTTP server.

    A module-level hook so tests can drive requests against the bound
    address and then raise :class:`KeyboardInterrupt` themselves.
    """
    while True:
        time.sleep(0.25)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve AQL queries: JSON lines over stdin, or HTTP with ``--http``."""
    bundle = _load_bundle(args)
    if bundle is None:
        return 2
    config = _query_config(args)
    if args.http is not None:
        return _serve_http(bundle, config, args)
    return _serve_stdin(bundle, config, args)


def _serve_http(bundle, config: EngineConfig, args) -> int:
    from repro.server import ClientQuota, ReproHTTPServer, ServerThread

    host, _, port_text = args.http.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"--http expects HOST:PORT, got {args.http!r}", file=sys.stderr)
        return 2
    quota = None
    if args.quota_rps is not None:
        quota = ClientQuota(rate=args.quota_rps, burst=args.quota_burst)
    service = _service_for(bundle, config, args)
    runner = ServerThread(
        ReproHTTPServer(
            service, host or "127.0.0.1", port, quota=quota, owns_service=True
        )
    )
    try:
        runner.start()
    except Exception as exc:
        service.close()
        print(f"cannot bind {args.http!r}: {exc}", file=sys.stderr)
        return 2
    bound_host, bound_port = runner.address
    print(
        f"serving {bundle.name} ({bundle.kg.num_nodes:,} nodes) on "
        f"http://{bound_host}:{bound_port} (backend={args.backend}); "
        "Ctrl-C stops gracefully",
        file=sys.stderr,
    )
    try:
        _wait_for_interrupt(runner)
    except KeyboardInterrupt:
        _print_health(service)
        runner.stop()
        return 130
    runner.stop()
    return 0


def _serve_stdin(bundle, config: EngineConfig, args) -> int:
    """One AQL query per stdin line; one flushed JSON result line each."""
    import json
    from collections import deque

    from repro.server.app import encode_result, error_payload

    print(f"serving {bundle.name} ({bundle.kg.num_nodes:,} nodes); "
          "one AQL query per line, blank/# lines ignored", file=sys.stderr)
    exit_code = 0
    served = 0

    def emit(line_number: int, aql: str, payload: dict) -> None:
        record = {"line": line_number, "aql": aql, **payload}
        # one self-contained JSON object per line, flushed immediately so
        # a pipe consumer sees each result as soon as it settles
        print(json.dumps(record, sort_keys=True), flush=True)

    def settle(line_number: int, aql: str, handle, trace: bool) -> None:
        nonlocal exit_code, served
        try:
            result = handle.result()
        except ReproError as exc:
            emit(line_number, aql, {
                "status": handle.status.value,
                "error": error_payload(exc),
            })
            exit_code = 1
            return
        emit(line_number, aql, {
            "status": "succeeded",
            "result": encode_result(result),
        })
        served += 1
        if trace:
            _print_round_trace(result)

    pending: deque = deque()
    with _service_for(bundle, config, args) as service:
        try:
            for line_number, raw_line in enumerate(sys.stdin, start=1):
                aql = raw_line.strip()
                if not aql or aql.startswith("#"):
                    continue
                try:
                    handle = service.submit(aql)
                except ReproError as exc:
                    emit(line_number, aql, {
                        "status": "rejected",
                        "error": error_payload(exc),
                    })
                    exit_code = 1
                    continue
                pending.append((line_number, aql, handle))
                # flush whatever already settled, keeping submission order
                while pending and pending[0][2].status.terminal:
                    settle(*pending.popleft(), args.trace)
            while pending:  # EOF: wait out the stragglers
                settle(*pending.popleft(), args.trace)
        except KeyboardInterrupt:
            # SIGINT mid-serve: report health, let the context manager
            # cancel what's still running, and exit without a stack trace
            _print_health(service)
            print(
                f"interrupted; served {served} queries "
                f"({len(pending)} cancelled)",
                file=sys.stderr,
            )
            return 130
    print(f"served {served} queries", file=sys.stderr)
    return exit_code


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Print a running server's Prometheus exposition to stdout."""
    from repro.server import ReproClient

    host, _, port_text = args.address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(
            f"metrics expects HOST:PORT, got {args.address!r}", file=sys.stderr
        )
        return 2
    print(ReproClient(host or "127.0.0.1", port).metrics(), end="")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """Save or load a dataset's snapshot (+ plan artifacts) via a catalog."""
    from repro.core.plan import PlanCache
    from repro.core.planner import QueryPlanner
    from repro.kg.csr import build_call_count
    from repro.store import SnapshotCatalog, load_snapshot

    bundle = _load_bundle(args)
    if bundle is None:
        return 2
    kg = bundle.kg
    config = EngineConfig(seed=args.seed)
    catalog = SnapshotCatalog(args.path)
    components = [
        component
        for aql in args.plan
        for component in parse_query(aql).query.components
    ]

    if args.action == "save":
        started = time.perf_counter()
        path = catalog.save_snapshot(kg)
        snapshot_ms = (time.perf_counter() - started) * 1e3
        print(
            f"snapshot: {kg.num_nodes:,} nodes / {kg.num_edges:,} edges -> "
            f"{path} ({path.stat().st_size:,} bytes, {snapshot_ms:,.1f} ms)"
        )
        if components:
            planner = QueryPlanner(
                kg, bundle.space(), config, cache=PlanCache(), catalog=catalog
            )
            started = time.perf_counter()
            for component in components:
                planner.plan_for(component)
            plans_ms = (time.perf_counter() - started) * 1e3
            print(
                f"plans:    {planner.build_count} built, "
                f"{planner.catalog_hits} already stored ({plans_ms:,.1f} ms)"
            )
        return 0

    # load: memory-map the stored artefacts and prove nothing recompiles
    builds_before = build_call_count()
    started = time.perf_counter()
    load_snapshot(
        catalog.snapshot_path(kg),
        kg,
        verify_fingerprint=args.verify_fingerprint,
    )
    load_ms = (time.perf_counter() - started) * 1e3
    print(
        f"snapshot: mmap-loaded {kg.num_nodes:,} nodes / {kg.num_edges:,} "
        f"edges in {load_ms:,.2f} ms "
        f"(build_csr calls: {build_call_count() - builds_before})"
    )
    if components:
        planner = QueryPlanner(
            kg, bundle.space(), config, cache=PlanCache(), catalog=catalog
        )
        started = time.perf_counter()
        for component in components:
            planner.plan_for(component)
        plans_ms = (time.perf_counter() - started) * 1e3
        print(
            f"plans:    {planner.catalog_hits} loaded from the catalog, "
            f"{planner.build_count} S1 builds ({plans_ms:,.1f} ms)"
        )
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for name, preset in sorted(_dataset_registry().items()):
        bundle = preset(seed=0)
        hubs = ", ".join(hub.key for hub in bundle.spec.hubs)
        print(f"{name}: {bundle.kg.num_nodes:,} nodes, "
              f"{bundle.kg.num_edges:,} edges, "
              f"{bundle.kg.num_predicates} predicates")
        print(f"  hubs: {hubs}")
    return 0


def _as_float(value: object) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        return None
    try:
        return float(value)
    except ValueError:
        return None


def _figure_series(
    result: "_experiments.ExperimentResult",
) -> tuple[list[Series], int, int]:
    """Best-effort series extraction from a figure's rows.

    Figure rows come in two layouts: ``(label, x, y, ...)`` (Fig. 5) and
    ``(x, label, y, ...)`` (Fig. 6 sweeps).  Whichever of the first two
    columns is numeric is the x axis; the other is the series label; the
    first numeric column after them is y.  Returns the series plus the
    (x, y) column indexes for axis labelling.
    """
    if not result.rows or len(result.headers) < 3:
        return [], 0, 0
    first_numeric = all(_as_float(row[0]) is not None for row in result.rows)
    x_column, label_column = (0, 1) if first_numeric else (1, 0)
    grouped: dict[str, list[tuple[float, float]]] = {}
    y_column = 2
    for row in result.rows:
        if len(row) <= y_column:
            continue
        x = _as_float(row[x_column])
        y = _as_float(row[y_column])
        if x is None or y is None:
            continue
        grouped.setdefault(str(row[label_column]), []).append((x, y))
    series = [
        Series.from_rows(name, points)
        for name, points in grouped.items()
        if len(points) >= 2
    ]
    return series, x_column, y_column


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.list or not args.name:
        for name in EXPERIMENTS:
            print(name)
        return 0
    driver = EXPERIMENTS.get(args.name)
    if driver is None:
        print(
            f"unknown experiment {args.name!r}; run "
            "'python -m repro experiment --list'",
            file=sys.stderr,
        )
        return 2
    result = driver(seed=args.seed)
    print(result.text)
    if args.plot:
        series, x_column, y_column = _figure_series(result)
        if series:
            print()
            print(
                line_chart(
                    series,
                    title=args.name,
                    x_label=str(result.headers[x_column]),
                    y_label=str(result.headers[y_column]),
                )
            )
        else:
            print("(no plottable series in this experiment's rows)")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.baselines.ssb import tau_ground_truth
    from repro.datasets import standard_workload

    presets = _dataset_registry()
    if args.dataset not in presets:
        print(
            f"unknown dataset {args.dataset!r}; choose from "
            f"{', '.join(sorted(presets))}",
            file=sys.stderr,
        )
        return 2
    bundle = presets[args.dataset](seed=args.seed)
    engine = ApproximateAggregateEngine(
        bundle.kg, bundle.embedding, config=EngineConfig(seed=args.seed)
    )
    queries = standard_workload(bundle)
    if args.shape:
        queries = [query for query in queries if query.shape.value == args.shape]
    queries = queries[: args.limit]
    if not queries:
        print("no workload queries match the given filters", file=sys.stderr)
        return 2
    print(f"{'qid':<14} {'shape':<7} {'fn':<6} {'estimate':>14} "
          f"{'tau-GT':>14} {'error':>7}  time")
    for query in queries:
        started = time.perf_counter()
        result = engine.execute(query.aggregate_query)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        if isinstance(result, GroupedResult):
            print(f"{query.qid:<14} {query.shape.value:<7} "
                  f"{query.function.value:<6} {result.num_groups:>10} groups"
                  f" {'-':>14} {'-':>7}  {elapsed_ms:,.0f} ms")
            continue
        truth = tau_ground_truth(bundle.kg, bundle.space(), query.aggregate_query)
        error = result.relative_error(truth.value)
        print(f"{query.qid:<14} {query.shape.value:<7} "
              f"{query.function.value:<6} {result.value:>14,.2f} "
              f"{truth.value:>14,.2f} {error:>7.2%}  {elapsed_ms:,.0f} ms")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    presets = _dataset_registry()
    if args.dataset not in presets:
        print(
            f"unknown dataset {args.dataset!r}; choose from "
            f"{', '.join(sorted(presets))}",
            file=sys.stderr,
        )
        return 2
    bundle = presets[args.dataset](seed=args.seed, scale=args.scale)
    if args.format == "json":
        from repro.kg import save_json

        save_json(bundle.kg, args.path)
    elif args.format == "triples":
        from repro.kg import save_triples

        save_triples(bundle.kg, args.path)
    else:
        import networkx as nx

        from repro.kg import to_networkx

        graph = to_networkx(bundle.kg)
        # GraphML cannot serialise lists/dicts; flatten the payloads.
        for _node, data in graph.nodes(data=True):
            data["types"] = "|".join(data.pop("types"))
            for key, value in data.pop("attributes").items():
                data[f"attr_{key}"] = value
        nx.write_graphml(graph, args.path)
    print(
        f"wrote {bundle.kg.num_nodes:,} nodes / {bundle.kg.num_edges:,} edges "
        f"({args.format}) to {args.path}"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "query": _cmd_query,
    "serve": _cmd_serve,
    "metrics": _cmd_metrics,
    "snapshot": _cmd_snapshot,
    "datasets": _cmd_datasets,
    "experiment": _cmd_experiment,
    "workload": _cmd_workload,
    "export": _cmd_export,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
