"""Greedy correctness validation with repeat factor ``r`` (paper §IV-B2).

Enumerating all subgraph matches per sampled answer is what makes SSB slow;
the engine instead runs a best-first search from the mapping node, guided by
the stationary visiting probabilities computed during sampling, and stops
after finding ``r`` distinct paths to the answer.  The best similarity among
those paths decides correctness (similarity >= tau).

Properties (paper's effectiveness analysis):

* no false positives — an incorrect answer has *no* path of similarity
  >= tau, so whatever path the greedy search returns cannot clear tau;
* false negatives shrink as ``r`` grows (Fig. 6(c)): more paths found means
  a better chance of hitting the answer's optimal match.

Implementation notes.  A validator instance is bound to one query component
and caches, per node, (a) a probability-sorted, branch-capped successor
list with precomputed log-similarities, and (b) the full adjacency map used
for the goal shortcut: whenever the expanded node has a direct edge to the
answer, that path is recorded immediately instead of competing in the heap.
This keeps one validation at O(budget * branch_cap) heap operations even
around hubs with thousands of neighbours.  Per-edge log-similarities come
from one dense log-clamped similarity row indexed by predicate id over the
CSR snapshot's adjacency slices — no per-edge string lookups.

Visiting probabilities are **array-valued**: callers may pass either the
legacy ``{node_id: probability}`` mapping or a dense float array over node
ids (zero = outside the scope).  Mappings are densified once per
(query predicate, visiting) context, so membership tests and probability
lookups inside the search are numpy fancy-indexing, not dict probes.
:meth:`CorrectnessValidator.validate_batch` is the engine's batched entry
point: it validates a whole round's pending answers in one pass over the
shared expansion cache.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Union

import numpy as np

from repro.embedding.predicate_space import PredicateVectorSpace
from repro.kg.csr import csr_snapshot
from repro.kg.graph import KnowledgeGraph
from repro.semantics import kernels
from repro.semantics.similarity import SIMILARITY_FLOOR, require_known_predicates

#: default cap on queue pops per validation; bounds worst-case latency.
DEFAULT_EXPANSION_BUDGET = 120

#: successors kept per node (probability-ordered beam).
DEFAULT_BRANCH_CAP = 16

#: visiting probabilities: ``{node_id: probability}`` or a dense array over
#: node ids where zero marks nodes outside the sampling scope.
VisitingProbabilities = Union[Mapping[int, float], np.ndarray]

#: one recorded pop of the shared (answer-independent) expansion trace:
#: ``(node, log_sum, on_path, depth, adjacency, beam_children)``; the last
#: two are None for depth-capped pops that were counted but not expanded.
_TracedPop = tuple[
    int,
    float,
    tuple[int, ...],
    int,
    "dict[int, float] | None",
    "frozenset[int] | None",
]


@dataclass(frozen=True)
class ValidationOutcome:
    """Result of validating one answer."""

    answer: int
    similarity: float
    paths_found: int
    expansions: int
    #: length (edges) of the best path found; 0 when none was found
    best_length: int = 0

    def is_correct(self, tau: float) -> bool:
        """True when the answer's (heuristic) best match clears tau."""
        return self.similarity >= tau


class CorrectnessValidator:
    """Best-first path search guided by stationary probabilities."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        *,
        repeat_factor: int = 3,
        max_length: int = 3,
        floor: float = SIMILARITY_FLOOR,
        expansion_budget: int = DEFAULT_EXPANSION_BUDGET,
        branch_cap: int = DEFAULT_BRANCH_CAP,
        use_kernels: bool = True,
        use_jit: bool = False,
    ) -> None:
        if repeat_factor < 1:
            raise ValueError("repeat_factor must be >= 1")
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        if branch_cap < 1:
            raise ValueError("branch_cap must be >= 1")
        self._kg = kg
        self._space = space
        self.repeat_factor = repeat_factor
        self.max_length = max_length
        self.floor = floor
        self.expansion_budget = expansion_budget
        self.branch_cap = branch_cap
        self.use_kernels = use_kernels
        self.use_jit = use_jit
        # caches are (query predicate, visiting context) specific; they
        # reset when the validator is reused for a different context
        self._cache_predicate: str | None = None
        #: strong reference to the context's visiting object: while it is
        #: the cache key it cannot be collected, so ``is`` identity can
        #: never alias a dead context (unlike the raw ``id()`` it replaced)
        self._context_ref: VisitingProbabilities | None = None
        #: monotone context counter — a stable identity token for the
        #: current cache generation, unaffected by address reuse
        self._context_token = 0
        self._children: dict[int, list[tuple[float, int, float]]] = {}
        self._beam_children: dict[int, frozenset[int]] = {}
        self._adjacency: dict[int, dict[int, float]] = {}
        self._log_row: np.ndarray | None = None
        self._visiting: np.ndarray | None = None
        #: per-source shared expansion traces (see :meth:`_shared_pops`)
        self._traces: dict[int, list[_TracedPop]] = {}
        #: compiled-kernel state for the current context
        self._compiled: kernels.CompiledContext | None = None
        self._kernel_traces: dict[int, kernels.SharedTrace] = {}

    # ------------------------------------------------------------------
    def _reset_cache(
        self,
        query_predicate: str,
        visiting_probabilities: VisitingProbabilities,
    ) -> None:
        if (
            self._context_ref is visiting_probabilities
            and self._cache_predicate == query_predicate
        ):
            return
        self._cache_predicate = query_predicate
        self._context_ref = visiting_probabilities
        self._context_token += 1
        self._children.clear()
        self._beam_children.clear()
        self._adjacency.clear()
        self._log_row = None
        self._visiting = None
        self._traces.clear()
        self._compiled = None
        self._kernel_traces.clear()

    def _visiting_array(
        self, visiting_probabilities: VisitingProbabilities
    ) -> np.ndarray:
        """Dense per-node probability array for the current context.

        Mappings are densified once per cache context; arrays pass through
        untouched.  A node participates in the search iff its entry is
        positive — exactly the legacy mapping's membership semantics, since
        those mappings only ever held strictly positive probabilities.
        """
        if self._visiting is None:
            if isinstance(visiting_probabilities, np.ndarray):
                self._visiting = visiting_probabilities
            else:
                dense = np.zeros(self._kg.num_nodes, dtype=np.float64)
                if visiting_probabilities:
                    nodes = np.fromiter(
                        visiting_probabilities.keys(),
                        dtype=np.int64,
                        count=len(visiting_probabilities),
                    )
                    dense[nodes] = np.fromiter(
                        visiting_probabilities.values(),
                        dtype=np.float64,
                        count=len(visiting_probabilities),
                    )
                self._visiting = dense
        return self._visiting

    def _log_similarities(self, query_predicate: str) -> np.ndarray:
        """Dense log-clamped similarity per predicate id (cached per query).

        Predicates the embedding does not cover hold NaN; like the seed's
        lazy per-edge lookups, they only raise when an expansion actually
        touches one of their edges (see :meth:`_expand`).
        """
        if self._log_row is None:
            row = self._space.known_similarity_row(
                query_predicate, self._kg.predicates
            )
            with np.errstate(invalid="ignore"):
                self._log_row = np.log(np.clip(row, self.floor, 1.0))
        return self._log_row

    def _expand(
        self, node: int, query_predicate: str, visiting: np.ndarray
    ) -> tuple[list[tuple[float, int, float]], dict[int, float]]:
        """Cached ``(sorted successor beam, full adjacency log-sims)``."""
        children = self._children.get(node)
        if children is not None:
            return children, self._adjacency[node]
        snapshot = csr_snapshot(self._kg)
        edge_ids, neighbours = snapshot.neighbors(node)
        predicate_ids = snapshot.edge_predicate_ids[edge_ids]
        log_similarities = self._log_similarities(query_predicate)[predicate_ids]
        # Same failure mode as the seed's per-edge lookup: expanding a node
        # whose edge predicate the embedding does not know raises.
        require_known_predicates(
            self._kg, self._space, predicate_ids, log_similarities
        )
        # Best (max) log-similarity per distinct neighbour, vectorised.
        distinct, inverse = np.unique(neighbours, return_inverse=True)
        best = np.full(len(distinct), -np.inf, dtype=np.float64)
        np.maximum.at(best, inverse, log_similarities)
        adjacency = dict(zip(distinct.tolist(), best.tolist()))
        # Beam: in-scope successors ordered by (probability desc, id asc).
        # ``distinct`` is ascending, so a stable sort on the negated
        # probabilities reproduces the legacy tuple-sort order exactly.
        probabilities = visiting[distinct]
        kept = np.flatnonzero(probabilities > 0.0)
        order = kept[np.argsort(-probabilities[kept], kind="stable")]
        order = order[: self.branch_cap]
        beam = [
            (-float(probabilities[index]), int(distinct[index]), float(best[index]))
            for index in order
        ]
        # Publication order matters when a shared validator is driven by
        # the serving layer's thread backend: concurrent callers treat a
        # ``_children`` hit as "this node is fully cached" (the read path
        # at the top of this method and ``_shared_pops``), so the sibling
        # dicts must be visible before ``_children`` is — writes of
        # identical deterministic values are otherwise benign.
        self._adjacency[node] = adjacency
        self._beam_children[node] = frozenset(child for _, child, _ in beam)
        self._children[node] = beam
        return beam, adjacency

    # ------------------------------------------------------------------
    def validate(
        self,
        source: int,
        answer: int,
        query_predicate: str,
        visiting_probabilities: VisitingProbabilities,
        stop_threshold: float | None = None,
    ) -> ValidationOutcome:
        """Find up to ``repeat_factor`` paths ``source -> answer`` greedily.

        The frontier is a max-heap on the stationary probability of a
        partial path's endpoint — the paper's "select the node with the
        highest visiting probability" policy.  Only nodes with known
        (positive) probability, i.e. inside the sampling scope, are
        expanded.

        ``stop_threshold`` enables a sound short-circuit for correctness
        validation: the answer similarity is a max over paths, so once a
        found path reaches the threshold the >= tau verdict cannot change
        and the remaining repeat-factor paths are skipped.
        """
        self._reset_cache(query_predicate, visiting_probabilities)
        visiting = self._visiting_array(visiting_probabilities)
        if self.use_kernels:
            context = self._compiled_context(query_predicate, visiting)
            similarity, paths_found, expansions, best_length = kernels.search(
                context,
                source,
                answer,
                self.repeat_factor,
                self.max_length,
                self.expansion_budget,
                stop_threshold,
                use_jit=self.use_jit,
            )
            return ValidationOutcome(
                answer=answer,
                similarity=similarity,
                paths_found=paths_found,
                expansions=expansions,
                best_length=best_length,
            )
        return self._search(source, answer, query_predicate, visiting, stop_threshold)

    def _compiled_context(
        self, query_predicate: str, visiting: np.ndarray
    ) -> kernels.CompiledContext:
        """Compile the current context once; reused until the next reset.

        Concurrent builders (the serving layer's thread backend shares
        validators) produce identical contexts, so the last write winning
        is benign — same reasoning as :meth:`_expand`'s publication note.
        """
        context = self._compiled
        if context is None:
            context = kernels.build_context(
                self._kg,
                self._space,
                csr_snapshot(self._kg),
                self._log_similarities(query_predicate),
                visiting,
                self.branch_cap,
            )
            self._compiled = context
        return context

    def _search(
        self,
        source: int,
        answer: int,
        query_predicate: str,
        visiting: np.ndarray,
        stop_threshold: float | None,
    ) -> ValidationOutcome:
        """One best-first search over the (already normalised) context."""
        best_similarity = 0.0
        best_length = 0
        paths_found = 0
        expansions = 0
        tie_breaker = itertools.count()

        source_probability = float(visiting[source]) if source < len(visiting) else 0.0
        if source_probability <= 0.0:
            source_probability = 1.0
        # Heap entries: (-probability, tiebreak, node, log_sim, on_path).
        heap: list[tuple[float, int, int, float, tuple[int, ...]]] = [
            (-source_probability, next(tie_breaker), source, 0.0, (source,))
        ]
        done = False
        while heap and not done and expansions < self.expansion_budget:
            _, _, node, log_sum, on_path = heapq.heappop(heap)
            depth = len(on_path) - 1
            expansions += 1
            if depth >= self.max_length:
                continue
            beam, adjacency = self._expand(node, query_predicate, visiting)
            # Goal shortcut: a direct edge from the expanded node to the
            # answer completes a path right away.
            goal_log = adjacency.get(answer)
            if goal_log is not None and answer not in on_path:
                similarity = math.exp((log_sum + goal_log) / (depth + 1))
                paths_found += 1
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_length = depth + 1
                if paths_found >= self.repeat_factor or (
                    stop_threshold is not None
                    and best_similarity >= stop_threshold
                ):
                    done = True
                    continue
            for priority, child, log_similarity in beam:
                if child == answer or child in on_path:
                    continue
                heapq.heappush(
                    heap,
                    (
                        priority,
                        next(tie_breaker),
                        child,
                        log_sum + log_similarity,
                        on_path + (child,),
                    ),
                )
        return ValidationOutcome(
            answer=answer,
            similarity=best_similarity,
            paths_found=paths_found,
            expansions=expansions,
            best_length=best_length,
        )

    def _shared_pops(
        self, source: int, query_predicate: str, visiting: np.ndarray
    ) -> list[_TracedPop]:
        """The answer-independent expansion trace from ``source`` (cached).

        Runs the best-first search once with *no* goal: no goal shortcut,
        no answer-push skip, no termination — just the budgeted pop
        sequence with each pop's partial-path state, adjacency and beam
        children.  Because a per-answer search only deviates from this
        sequence where its answer appears in a popped node's beam (the one
        push the real search skips), the trace is a sound shared prefix for
        every answer: :meth:`_replay` walks it instead of re-running the
        heap, and falls back to a private search exactly at the first
        would-be deviation.
        """
        cached = self._traces.get(source)
        if cached is not None:
            return cached
        pops: list[_TracedPop] = []
        tie_breaker = itertools.count()
        source_probability = float(visiting[source]) if source < len(visiting) else 0.0
        if source_probability <= 0.0:
            source_probability = 1.0
        heap: list[tuple[float, int, int, float, tuple[int, ...]]] = [
            (-source_probability, next(tie_breaker), source, 0.0, (source,))
        ]
        expansions = 0
        while heap and expansions < self.expansion_budget:
            _, _, node, log_sum, on_path = heapq.heappop(heap)
            depth = len(on_path) - 1
            expansions += 1
            if depth >= self.max_length:
                pops.append((node, log_sum, on_path, depth, None, None))
                continue
            beam, adjacency = self._expand(node, query_predicate, visiting)
            pops.append(
                (node, log_sum, on_path, depth, adjacency, self._beam_children[node])
            )
            for priority, child, log_similarity in beam:
                if child in on_path:
                    continue
                heapq.heappush(
                    heap,
                    (
                        priority,
                        next(tie_breaker),
                        child,
                        log_sum + log_similarity,
                        on_path + (child,),
                    ),
                )
        self._traces[source] = pops
        return pops

    def _replay(
        self,
        pops: list[_TracedPop],
        answer: int,
        stop_threshold: float | None,
    ) -> ValidationOutcome | None:
        """Replay the shared trace for one answer; None = must search.

        Mirrors :meth:`_search` pop for pop: the goal shortcut fires off
        the recorded adjacency, termination counts the same expansions.
        Returns None at the first pop whose beam contains the answer while
        the search would continue — from there the real heap (which skips
        answer pushes) diverges from the shared one, so the caller runs the
        private search instead.  Every returned outcome is exactly what
        :meth:`validate` would produce.
        """
        best_similarity = 0.0
        best_length = 0
        paths_found = 0
        expansions = 0
        for node, log_sum, on_path, depth, adjacency, beam_children in pops:
            expansions += 1
            if adjacency is None:  # depth-capped pop: counted, not expanded
                continue
            goal_log = adjacency.get(answer)
            answer_on_path = answer in on_path
            if goal_log is not None and not answer_on_path:
                similarity = math.exp((log_sum + goal_log) / (depth + 1))
                paths_found += 1
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_length = depth + 1
                if paths_found >= self.repeat_factor or (
                    stop_threshold is not None
                    and best_similarity >= stop_threshold
                ):
                    break
            assert beam_children is not None
            if answer in beam_children and not answer_on_path:
                return None
        return ValidationOutcome(
            answer=answer,
            similarity=best_similarity,
            paths_found=paths_found,
            expansions=expansions,
            best_length=best_length,
        )

    def validate_batch(
        self,
        source: int,
        answers: Iterable[int],
        query_predicate: str,
        visiting_probabilities: VisitingProbabilities,
        stop_threshold: float | None = None,
    ) -> dict[int, ValidationOutcome]:
        """Validate every distinct answer of a round in one shared pass.

        The batched entry point of the validation service: the visiting
        context is densified once, the log-similarity row is materialised
        once, and — the actual batching — the budgeted best-first pop
        sequence is recorded once per context (:meth:`_shared_pops`) and
        *replayed* per answer with plain dict lookups instead of re-running
        the heap search, falling back to a private search only for answers
        whose presence would have altered the frontier.  Outcomes are
        exactly those of calling :meth:`validate` per answer.
        """
        self._reset_cache(query_predicate, visiting_probabilities)
        visiting = self._visiting_array(visiting_probabilities)
        self._log_similarities(query_predicate)
        outcomes: dict[int, ValidationOutcome] = {}
        if self.use_kernels:
            context = self._compiled_context(query_predicate, visiting)
            trace = self._kernel_traces.get(source)
            if trace is None:
                trace = kernels.build_trace(
                    context, source, self.max_length, self.expansion_budget
                )
                self._kernel_traces[source] = trace
            for answer in answers:
                answer = int(answer)
                if answer in outcomes:
                    continue
                result = kernels.replay(
                    trace, answer, self.repeat_factor, stop_threshold
                )
                if result is None:
                    result = kernels.search(
                        context,
                        source,
                        answer,
                        self.repeat_factor,
                        self.max_length,
                        self.expansion_budget,
                        stop_threshold,
                        use_jit=self.use_jit,
                    )
                similarity, paths_found, expansions, best_length = result
                outcomes[answer] = ValidationOutcome(
                    answer=answer,
                    similarity=similarity,
                    paths_found=paths_found,
                    expansions=expansions,
                    best_length=best_length,
                )
            return outcomes
        pops = self._shared_pops(source, query_predicate, visiting)
        for answer in answers:
            answer = int(answer)
            if answer in outcomes:
                continue
            outcome = self._replay(pops, answer, stop_threshold)
            if outcome is None:
                outcome = self._search(
                    source, answer, query_predicate, visiting, stop_threshold
                )
            outcomes[answer] = outcome
        return outcomes

    def validate_many(
        self,
        source: int,
        answers: list[int],
        query_predicate: str,
        visiting_probabilities: VisitingProbabilities,
        stop_threshold: float | None = None,
    ) -> dict[int, ValidationOutcome]:
        """Validate each distinct answer once; results keyed by answer id.

        Delegates to :meth:`validate_batch`; ``stop_threshold`` is routed
        through so the tau short-circuit that :meth:`validate` supports
        applies to bulk validation too.
        """
        return self.validate_batch(
            source,
            answers,
            query_predicate,
            visiting_probabilities,
            stop_threshold=stop_threshold,
        )
