"""Semantic similarity of paths and subgraph matches (paper §III, §IV-B2).

* :mod:`repro.semantics.similarity` — Eq. 2-3: geometric-mean path
  similarity and per-answer best-match similarity.
* :mod:`repro.semantics.matching` — exhaustive single-pass enumeration of
  best matches within the n-bounded scope (the expensive step of SSB).
* :mod:`repro.semantics.validation` — the greedy, stationary-probability-
  guided correctness validation with repeat factor ``r``.
"""

from repro.semantics.matching import SubgraphMatch, best_matches_from, find_best_match
from repro.semantics.similarity import (
    SIMILARITY_FLOOR,
    clamp_similarity,
    match_similarity,
    path_similarity,
)
from repro.semantics.validation import CorrectnessValidator, ValidationOutcome

__all__ = [
    "SIMILARITY_FLOOR",
    "clamp_similarity",
    "path_similarity",
    "match_similarity",
    "SubgraphMatch",
    "find_best_match",
    "best_matches_from",
    "CorrectnessValidator",
    "ValidationOutcome",
]
