"""Semantic similarity of paths (Eq. 2) and answers (Eq. 3).

The similarity of a subgraph match (an edge-to-path mapping from the query
edge to a KG path) is the geometric mean of each path edge's predicate
similarity to the query edge's predicate; an answer's similarity is the
maximum over its matches.  Cosines can be non-positive, so similarities are
clamped to a small positive floor — Lemma 1 assumes strictly positive edge
weights, and a geometric mean dies on zeros.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import EmbeddingError
from repro.kg.graph import KnowledgeGraph

#: smallest predicate similarity the pipeline will use; keeps the geometric
#: mean well-defined and the random walk irreducible (Lemma 1).
SIMILARITY_FLOOR = 1e-3


def require_known_predicates(
    kg: KnowledgeGraph,
    space: PredicateVectorSpace,
    predicate_ids: np.ndarray,
    values: np.ndarray,
) -> None:
    """Raise ``EmbeddingError`` where per-edge ``values`` carry NaN.

    ``values`` are gathers from a
    :meth:`~repro.embedding.predicate_space.PredicateVectorSpace.known_similarity_row`
    aligned with ``predicate_ids``; NaN marks an edge whose predicate the
    embedding does not cover.  Such edges only fail when actually touched,
    matching the pipeline's original lazy per-edge similarity lookups.
    """
    missing = np.isnan(values)
    if missing.any():
        unknown = kg.predicate_name(int(predicate_ids[missing.argmax()]))
        space.vector(unknown)  # names the culprit when it is truly unknown
        raise EmbeddingError(
            f"stale similarity row: predicate {unknown!r} resolved to NaN "
            "but the embedding now knows it"
        )


def clamp_similarity(value: float, floor: float = SIMILARITY_FLOOR) -> float:
    """Clamp a raw cosine into ``[floor, 1]``."""
    if value > 1.0:
        return 1.0
    if value < floor:
        return floor
    return value


def path_similarity(
    space: PredicateVectorSpace,
    query_predicate: str,
    path_predicates: Sequence[str],
    floor: float = SIMILARITY_FLOOR,
) -> float:
    """Eq. 2: geometric mean of predicate similarities along one path.

    ``path_predicates`` are the predicates of the KG path's edges, in order;
    the result is ``(prod_i sim(p_i, query))^(1/l)``.  Computed in log space
    for numerical stability on long paths.
    """
    if not path_predicates:
        raise ValueError("a subgraph match must contain at least one edge")
    log_total = 0.0
    for predicate in path_predicates:
        similarity = clamp_similarity(space.similarity(predicate, query_predicate), floor)
        log_total += math.log(similarity)
    return math.exp(log_total / len(path_predicates))


def match_similarity(
    space: PredicateVectorSpace,
    query_predicate: str,
    candidate_paths: Sequence[Sequence[str]],
    floor: float = SIMILARITY_FLOOR,
) -> float:
    """Eq. 3: the answer similarity — max path similarity over its matches."""
    if not candidate_paths:
        return 0.0
    return max(
        path_similarity(space, query_predicate, path, floor) for path in candidate_paths
    )


def chain_similarity(
    space: PredicateVectorSpace,
    query_predicates: Sequence[str],
    leg_paths: Sequence[Sequence[str]],
    floor: float = SIMILARITY_FLOOR,
) -> float:
    """Similarity of a chain match: geometric mean over all legs' edges.

    A chain query maps each query edge to its own path (one leg per hop,
    §V-B); every edge of leg ``i`` is compared against query predicate ``i``
    and the geometric mean is taken over the concatenated path, which
    reduces to Eq. 2 when the chain has one hop.
    """
    if len(query_predicates) != len(leg_paths):
        raise ValueError("one leg path required per query predicate")
    log_total = 0.0
    edge_count = 0
    for query_predicate, leg in zip(query_predicates, leg_paths):
        if not leg:
            raise ValueError("each chain leg must contain at least one edge")
        for predicate in leg:
            similarity = clamp_similarity(space.similarity(predicate, query_predicate), floor)
            log_total += math.log(similarity)
            edge_count += 1
    return math.exp(log_total / edge_count)
