"""Exhaustive subgraph-match search (the expensive core of SSB, §III).

Since Eq. 2 is non-monotone in path length, Dijkstra-style pruning is
unsound; the paper's remark 2 prescribes enumerating all (simple) paths up
to length ``n`` from the mapping node.  :func:`best_matches_from` does this
in a *single* depth-first pass and records, for every reachable node, the
best similarity and the path realising it — so SSB's per-candidate cost is
amortised over one traversal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.embedding.predicate_space import PredicateVectorSpace
from repro.kg.graph import KnowledgeGraph
from repro.semantics.similarity import SIMILARITY_FLOOR, clamp_similarity


@dataclass(frozen=True)
class SubgraphMatch:
    """One edge-to-path mapping (Definition 5) with its Eq. 2 similarity."""

    answer: int
    edge_path: tuple[int, ...]
    node_path: tuple[int, ...]
    similarity: float

    @property
    def length(self) -> int:
        """Number of edges on the path so far."""
        return len(self.edge_path)


def best_matches_from(
    kg: KnowledgeGraph,
    space: PredicateVectorSpace,
    query_predicate: str,
    source: int,
    max_length: int,
    *,
    targets: Iterable[int] | None = None,
    floor: float = SIMILARITY_FLOOR,
    max_expansions: int | None = None,
) -> dict[int, SubgraphMatch]:
    """Best subgraph match for every node reachable within ``max_length``.

    Enumerates all simple paths from ``source`` of length <= ``max_length``
    by DFS, carrying the running log-similarity so each extension is O(1).
    When ``targets`` is given, only those nodes are recorded (the traversal
    still passes through every node — correctness requires full
    enumeration — but skips the bookkeeping for non-targets).
    ``max_expansions`` caps the number of path extensions for callers that
    need bounded latency; hitting the cap can only produce underestimates
    (never false positives), mirroring the paper's false-negative analysis.
    """
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    target_set = set(targets) if targets is not None else None
    best: dict[int, SubgraphMatch] = {}
    expansions = 0

    # Iterative DFS over simple paths; each frame is (node, neighbour index).
    edge_path: list[int] = []
    node_path: list[int] = [source]
    log_sum = 0.0
    log_stack: list[float] = []
    on_path = {source}
    stack: list[tuple[int, int]] = [(source, 0)]

    def consider(node: int, depth: int, log_total: float) -> None:
        """Record ``path`` if it beats the best similarity seen for its answer."""
        if target_set is not None and node not in target_set:
            return
        similarity = math.exp(log_total / depth)
        current = best.get(node)
        if current is None or similarity > current.similarity:
            best[node] = SubgraphMatch(
                answer=node,
                edge_path=tuple(edge_path),
                node_path=tuple(node_path),
                similarity=similarity,
            )

    while stack:
        node, index = stack[-1]
        neighbours = kg.neighbors(node)
        if index >= len(neighbours) or (
            max_expansions is not None and expansions >= max_expansions
        ):
            stack.pop()
            if edge_path:
                edge_path.pop()
                node_path.pop()
                log_sum -= log_stack.pop()
            if node != source:
                on_path.discard(node)
            continue
        stack[-1] = (node, index + 1)
        edge_id, neighbour = neighbours[index]
        if neighbour in on_path:
            continue
        expansions += 1
        predicate = kg.predicate_of(edge_id)
        log_similarity = math.log(
            clamp_similarity(space.similarity(predicate, query_predicate), floor)
        )
        edge_path.append(edge_id)
        node_path.append(neighbour)
        log_sum += log_similarity
        log_stack.append(log_similarity)
        consider(neighbour, len(edge_path), log_sum)
        if len(edge_path) < max_length:
            on_path.add(neighbour)
            stack.append((neighbour, 0))
        else:
            edge_path.pop()
            node_path.pop()
            log_sum -= log_stack.pop()

    return best


def best_matches_iterative(
    kg: KnowledgeGraph,
    space: PredicateVectorSpace,
    query_predicate: str,
    source: int,
    max_length: int,
    *,
    targets: Iterable[int] | None = None,
    floor: float = SIMILARITY_FLOOR,
    budget_per_level: int = 3000,
) -> dict[int, SubgraphMatch]:
    """Budgeted enumeration via iterative deepening.

    A plain depth-first enumeration with an expansion cap can burn its
    entire budget inside the first neighbour's (possibly huge) subtree and
    never record the source's other *direct* edges.  Iterative deepening
    runs the capped DFS at depths 1..max_length and merges per-node best
    matches, so shallow matches — which dominate Eq. 3 in practice — are
    always recorded before deep exploration spends the budget.
    """
    target_set = set(targets) if targets is not None else None
    merged: dict[int, SubgraphMatch] = {}
    for depth in range(1, max_length + 1):
        level = best_matches_from(
            kg,
            space,
            query_predicate,
            source,
            depth,
            targets=target_set,
            floor=floor,
            max_expansions=budget_per_level,
        )
        for node, match in level.items():
            current = merged.get(node)
            if current is None or match.similarity > current.similarity:
                merged[node] = match
    return merged


def find_best_match(
    kg: KnowledgeGraph,
    space: PredicateVectorSpace,
    query_predicate: str,
    source: int,
    target: int,
    max_length: int,
    *,
    floor: float = SIMILARITY_FLOOR,
) -> SubgraphMatch | None:
    """Best match for a single target, or ``None`` if it is unreachable."""
    matches = best_matches_from(
        kg,
        space,
        query_predicate,
        source,
        max_length,
        targets=[target],
        floor=floor,
    )
    return matches.get(target)
