"""Array-compiled validation kernels (the per-pop Python residue, lowered).

PR 2 batched S2 validation behind a shared expansion trace, but the paths
the ROADMAP kept flagging as interpreter-bound survived it: the private
fallback best-first searches, the per-answer trace replay, chain-prefix
enumeration and the CNARW structural weights all still walked tuples,
dicts and heaps one entry at a time.  This module compiles that residue
into array programs, outcome-identical to the dict-based implementations
in :mod:`repro.semantics.validation` and :mod:`repro.sampling.topology`:

* :class:`CompiledContext` — per ``(query predicate, visiting)`` context,
  the whole in-scope neighbourhood is gathered **once** into pruned
  CSR-style arrays: deduplicated per-node adjacency with max
  log-similarity per neighbour (the goal-shortcut table) and the
  probability-ordered, branch-capped successor beam, in exactly the order
  ``CorrectnessValidator._expand`` would have produced node by node.
* :func:`search` — the flat-array best-first search over a compiled
  context: parent-pointer paths instead of tuple concatenation, heap
  entries reduced to ``(priority, tiebreak, slot)`` scalars, and an
  optional :mod:`numba` ``njit`` fast path (see :func:`jit_available`)
  with this pure-Python/numpy implementation as the always-present
  fallback — the dependency stays optional.
* :class:`SharedTrace` / :func:`replay` — the answer-independent pop
  sequence compiled to arrays with *inverted* goal and beam-membership
  tables sorted by neighbour id: replaying one answer touches only the
  pops whose node is actually adjacent to it (two ``searchsorted`` calls)
  instead of scanning all ``budget`` pops per answer.
* :func:`cnarw_weights` — CNARW's per-entry Python set intersections
  replaced by one sorted-key merge count over the pairs' CSR
  neighbourhoods.

Exactness notes.  All similarity arithmetic keeps the reference
implementation's operation order and uses scalar :func:`math.exp` (numpy's
SIMD ``exp`` may differ in the last ulp), so outcomes are byte-identical,
not merely close.  NaN log-similarities (predicates the embedding does not
cover) stay lazy: a per-node flag raises through
:func:`~repro.semantics.similarity.require_known_predicates` only when the
search actually expands an offending node, matching the seed's per-edge
lookup failure timing.
"""

from __future__ import annotations

import heapq
import math
import warnings
from dataclasses import dataclass, field
from heapq import heappop, heappush

import numpy as np

from repro.semantics.similarity import clamp_similarity, require_known_predicates

__all__ = [
    "ChainContext",
    "CompiledContext",
    "SharedTrace",
    "build_chain_context",
    "build_context",
    "build_trace",
    "chain_matches",
    "cnarw_weights",
    "jit_available",
    "replay",
    "search",
]


# ---------------------------------------------------------------------------
# Optional numba fast path
# ---------------------------------------------------------------------------
_JIT_SEARCH = None
_JIT_STATE = "unprobed"  # "unprobed" | "ready" | "missing" | "failed"


def jit_available() -> bool:
    """True when numba is importable and the search kernel compiled.

    numba is an *optional* dependency: when absent (or when its compile
    fails) every caller transparently uses the pure-numpy implementations,
    which are the equivalence-tested source of truth either way.
    """
    return _ensure_jit() is not None


def _ensure_jit():
    global _JIT_SEARCH, _JIT_STATE
    if _JIT_STATE == "unprobed":
        try:
            import numba  # noqa: F401
        except Exception:
            _JIT_STATE = "missing"
        else:
            try:
                _JIT_SEARCH = _compile_jit_search()
                _JIT_STATE = "ready"
            except Exception as error:  # pragma: no cover - numba-specific
                _JIT_STATE = "failed"
                warnings.warn(
                    f"numba present but the search kernel failed to compile "
                    f"({error!r}); using the pure-numpy fallback",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return _JIT_SEARCH


def _compile_jit_search():  # pragma: no cover - requires numba
    """Compile the flat-array best-first search with numba.

    The kernel mirrors :func:`_python_search` statement for statement over
    the same compiled arrays: a manual binary heap on ``(priority,
    tiebreak)`` keyed slots, parent-pointer path reconstruction, and
    scalar ``math.exp`` for path similarities.  It returns
    ``(similarity, paths_found, expansions, best_length, bad_node)`` where
    ``bad_node >= 0`` signals an expanded node with NaN edges — the Python
    wrapper then raises exactly like the interpreter path.
    """
    from numba import njit

    @njit(cache=False)
    def _jit_search(
        adj_indptr,
        adj_nbr,
        adj_log,
        beam_indptr,
        beam_child,
        beam_log,
        beam_priority,
        node_row,
        nan_flag,
        visiting,
        source,
        answer,
        repeat_factor,
        max_length,
        budget,
        stop_threshold,
        use_stop,
        branch_cap,
    ):
        capacity = budget * branch_cap + 2
        slot_node = np.empty(capacity, dtype=np.int64)
        slot_log = np.empty(capacity, dtype=np.float64)
        slot_parent = np.empty(capacity, dtype=np.int64)
        slot_depth = np.empty(capacity, dtype=np.int64)
        heap_priority = np.empty(capacity, dtype=np.float64)
        heap_tiebreak = np.empty(capacity, dtype=np.int64)
        heap_slot = np.empty(capacity, dtype=np.int64)

        source_probability = 0.0
        if source < visiting.shape[0]:
            source_probability = visiting[source]
        if source_probability <= 0.0:
            source_probability = 1.0
        slot_node[0] = source
        slot_log[0] = 0.0
        slot_parent[0] = -1
        slot_depth[0] = 0
        slots = 1
        heap_priority[0] = -source_probability
        heap_tiebreak[0] = 0
        heap_slot[0] = 0
        heap_size = 1
        tiebreak = 1

        best_similarity = 0.0
        best_length = 0
        paths_found = 0
        expansions = 0
        done = False
        path = np.empty(max_length + 2, dtype=np.int64)

        while heap_size > 0 and not done and expansions < budget:
            # heappop: take the root, move the last entry down.
            top_priority = heap_priority[0]
            top_tiebreak = heap_tiebreak[0]
            top_slot = heap_slot[0]
            heap_size -= 1
            if heap_size > 0:
                move_priority = heap_priority[heap_size]
                move_tiebreak = heap_tiebreak[heap_size]
                move_slot = heap_slot[heap_size]
                position = 0
                while True:
                    child = 2 * position + 1
                    if child >= heap_size:
                        break
                    right = child + 1
                    if right < heap_size and (
                        heap_priority[right] < heap_priority[child]
                        or (
                            heap_priority[right] == heap_priority[child]
                            and heap_tiebreak[right] < heap_tiebreak[child]
                        )
                    ):
                        child = right
                    if heap_priority[child] < move_priority or (
                        heap_priority[child] == move_priority
                        and heap_tiebreak[child] < move_tiebreak
                    ):
                        heap_priority[position] = heap_priority[child]
                        heap_tiebreak[position] = heap_tiebreak[child]
                        heap_slot[position] = heap_slot[child]
                        position = child
                    else:
                        break
                heap_priority[position] = move_priority
                heap_tiebreak[position] = move_tiebreak
                heap_slot[position] = move_slot
            _ = top_priority
            _ = top_tiebreak

            node = slot_node[top_slot]
            log_sum = slot_log[top_slot]
            depth = slot_depth[top_slot]
            expansions += 1
            if depth >= max_length:
                continue
            row = -1
            if node < node_row.shape[0]:
                row = node_row[node]
            if row < 0:
                # out-of-scope node (only ever the source): the Python
                # wrapper pre-checks this, but guard anyway
                return (best_similarity, paths_found, expansions, best_length, -2)
            if nan_flag[row]:
                return (best_similarity, paths_found, expansions, best_length, node)

            # reconstruct the on-path node set via parent pointers
            path_length = 0
            cursor = top_slot
            while cursor != -1:
                path[path_length] = slot_node[cursor]
                path_length += 1
                cursor = slot_parent[cursor]

            lo = adj_indptr[row]
            hi = adj_indptr[row + 1]
            goal_position = lo + np.searchsorted(adj_nbr[lo:hi], answer)
            if goal_position < hi and adj_nbr[goal_position] == answer:
                answer_on_path = False
                for index in range(path_length):
                    if path[index] == answer:
                        answer_on_path = True
                        break
                if not answer_on_path:
                    similarity = math.exp(
                        (log_sum + adj_log[goal_position]) / (depth + 1)
                    )
                    paths_found += 1
                    if similarity > best_similarity:
                        best_similarity = similarity
                        best_length = depth + 1
                    if paths_found >= repeat_factor or (
                        use_stop and best_similarity >= stop_threshold
                    ):
                        done = True
                        continue

            for position in range(beam_indptr[row], beam_indptr[row + 1]):
                child_node = beam_child[position]
                if child_node == answer:
                    continue
                skip = False
                for index in range(path_length):
                    if path[index] == child_node:
                        skip = True
                        break
                if skip:
                    continue
                slot_node[slots] = child_node
                slot_log[slots] = log_sum + beam_log[position]
                slot_parent[slots] = top_slot
                slot_depth[slots] = depth + 1
                # heappush: append then bubble up
                entry_priority = beam_priority[position]
                entry_tiebreak = tiebreak
                tiebreak += 1
                index = heap_size
                heap_size += 1
                while index > 0:
                    parent = (index - 1) // 2
                    if entry_priority < heap_priority[parent] or (
                        entry_priority == heap_priority[parent]
                        and entry_tiebreak < heap_tiebreak[parent]
                    ):
                        heap_priority[index] = heap_priority[parent]
                        heap_tiebreak[index] = heap_tiebreak[parent]
                        heap_slot[index] = heap_slot[parent]
                        index = parent
                    else:
                        break
                heap_priority[index] = entry_priority
                heap_tiebreak[index] = entry_tiebreak
                heap_slot[index] = slots
                slots += 1

        return (best_similarity, paths_found, expansions, best_length, -1)

    # Force one compilation now so a broken kernel fails at probe time
    # (and falls back) instead of mid-query.
    empty_i = np.zeros(1, dtype=np.int64)
    empty_f = np.zeros(1, dtype=np.float64)
    _jit_search(
        np.zeros(2, dtype=np.int64),
        empty_i,
        empty_f,
        np.zeros(2, dtype=np.int64),
        empty_i,
        empty_f,
        empty_f,
        np.zeros(1, dtype=np.int64),
        np.zeros(1, dtype=np.bool_),
        np.ones(1, dtype=np.float64),
        0,
        0,
        1,
        1,
        1,
        0.0,
        False,
        1,
    )
    return _jit_search


# ---------------------------------------------------------------------------
# Context compilation
# ---------------------------------------------------------------------------
@dataclass
class CompiledContext:
    """One ``(query predicate, visiting)`` context lowered to arrays.

    ``rows`` index the in-scope nodes (``visiting > 0``).  Per row the
    context holds the deduplicated adjacency (ascending neighbour id, max
    log-similarity per neighbour — the goal-shortcut table) and the
    probability-ordered branch-capped beam, entry-for-entry identical to
    what ``CorrectnessValidator._expand`` computes per node.  Out-of-scope
    search sources (the mapping node can sit outside its own scope) are
    expanded lazily into ``extra`` with the same per-node math.
    """

    kg: object
    space: object
    snapshot: object
    log_row: np.ndarray
    visiting: np.ndarray
    branch_cap: int
    num_nodes: int
    node_row: np.ndarray  # node id -> row index, -1 outside the scope
    row_node: np.ndarray  # row index -> node id
    adj_indptr: np.ndarray
    adj_nbr: np.ndarray  # ascending within each row
    adj_log: np.ndarray  # max log-similarity per (row, neighbour)
    beam_indptr: np.ndarray
    beam_child: np.ndarray
    beam_log: np.ndarray
    beam_priority: np.ndarray  # negated visiting probability
    nan_flag: np.ndarray  # per row: some incident edge has a NaN log-sim
    #: lazily expanded out-of-scope nodes: node -> (sorted neighbour ids,
    #: log-sims, beam list, beam child set)
    extra: dict = field(default_factory=dict)
    #: per-node beam lists materialised for the scalar search loop
    _beam_lists: dict = field(default_factory=dict)
    #: per-node ``{neighbour: log-sim}`` goal tables for the scalar loop —
    #: a dict probe per pop beats a binary search plus array boxing
    _goal_maps: dict = field(default_factory=dict)

    # -- per-node views -------------------------------------------------
    def beam(self, node: int) -> list:
        """``[(priority, child, log_similarity), ...]`` — may raise on NaN."""
        cached = self._beam_lists.get(node)
        if cached is not None:
            return cached
        row = int(self.node_row[node]) if node < self.num_nodes else -1
        if row >= 0:
            if self.nan_flag[row]:
                self._raise_unknown(node)
            start, end = int(self.beam_indptr[row]), int(self.beam_indptr[row + 1])
            beam = list(
                zip(
                    self.beam_priority[start:end].tolist(),
                    self.beam_child[start:end].tolist(),
                    self.beam_log[start:end].tolist(),
                )
            )
        else:
            beam = self._expand_extra(node)[2]
        self._beam_lists[node] = beam
        return beam

    def goal_log(self, node: int, answer: int) -> float | None:
        """Max log-similarity of a direct ``node -> answer`` edge, if any."""
        row = int(self.node_row[node]) if node < self.num_nodes else -1
        if row < 0:
            nbr, logs, _beam, _beam_set = self._expand_extra(node)
        else:
            start, end = int(self.adj_indptr[row]), int(self.adj_indptr[row + 1])
            nbr = self.adj_nbr[start:end]
            logs = self.adj_log[start:end]
        position = int(np.searchsorted(nbr, answer))
        if position < len(nbr) and int(nbr[position]) == answer:
            return float(logs[position])
        return None

    def goal_map(self, node: int) -> dict:
        """``{neighbour: max log-similarity}`` for one (expanded) node."""
        cached = self._goal_maps.get(node)
        if cached is None:
            nbr, logs = self.adjacency_arrays(node)
            cached = dict(zip(nbr.tolist(), logs.tolist()))
            self._goal_maps[node] = cached
        return cached

    def adjacency_arrays(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted neighbour ids, log-sims)`` for one (expanded) node."""
        row = int(self.node_row[node]) if node < self.num_nodes else -1
        if row < 0:
            nbr, logs, _beam, _beam_set = self._expand_extra(node)
            return nbr, logs
        start, end = int(self.adj_indptr[row]), int(self.adj_indptr[row + 1])
        return self.adj_nbr[start:end], self.adj_log[start:end]

    def _expand_extra(self, node: int):
        """Seed-style single-node expansion for out-of-scope sources."""
        cached = self.extra.get(node)
        if cached is not None:
            return cached
        edge_ids, neighbours = self.snapshot.neighbors(node)
        predicate_ids = self.snapshot.edge_predicate_ids[edge_ids]
        log_similarities = self.log_row[predicate_ids]
        require_known_predicates(
            self.kg, self.space, predicate_ids, log_similarities
        )
        distinct, inverse = np.unique(neighbours, return_inverse=True)
        best = np.full(len(distinct), -np.inf, dtype=np.float64)
        np.maximum.at(best, inverse, log_similarities)
        probabilities = np.where(
            distinct < len(self.visiting), self.visiting[np.minimum(distinct, len(self.visiting) - 1)], 0.0
        ) if len(self.visiting) else np.zeros(len(distinct))
        kept = np.flatnonzero(probabilities > 0.0)
        order = kept[np.argsort(-probabilities[kept], kind="stable")]
        order = order[: self.branch_cap]
        beam = [
            (-float(probabilities[index]), int(distinct[index]), float(best[index]))
            for index in order
        ]
        entry = (distinct, best, beam, frozenset(child for _, child, _ in beam))
        self.extra[node] = entry
        return entry

    def _raise_unknown(self, node: int) -> None:
        """Raise the seed's lazy unknown-predicate error for ``node``."""
        edge_ids, _neighbours = self.snapshot.neighbors(node)
        predicate_ids = self.snapshot.edge_predicate_ids[edge_ids]
        values = self.log_row[predicate_ids]
        require_known_predicates(self.kg, self.space, predicate_ids, values)
        raise AssertionError(  # pragma: no cover - flag implies NaN edges
            f"node {node} flagged NaN but require_known_predicates passed"
        )


def build_context(
    kg,
    space,
    snapshot,
    log_row: np.ndarray,
    visiting: np.ndarray,
    branch_cap: int,
) -> CompiledContext:
    """Compile one visiting context into a :class:`CompiledContext`.

    One vectorised gather over every in-scope node replaces the per-node
    ``_expand`` calls: dedup by ``row * num_nodes + neighbour`` keys, max
    log-similarity via ``np.maximum.at``, and the beam order via one
    stable ``lexsort`` on ``(row, -probability, adjacency position)`` —
    the exact ``(probability desc, id asc)`` order the dict path produces.
    """
    num_nodes = int(snapshot.num_nodes)
    dense = visiting
    limit = min(len(dense), num_nodes)
    in_scope = np.flatnonzero(dense[:limit] > 0.0).astype(np.int64)
    rows = len(in_scope)
    node_row = np.full(num_nodes, -1, dtype=np.int64)
    node_row[in_scope] = np.arange(rows, dtype=np.int64)

    owner, neighbours, edge_ids = snapshot.gather_neighbors(in_scope)
    predicate_ids = snapshot.edge_predicate_ids[edge_ids]
    entry_log = log_row[predicate_ids]
    entry_nan = np.isnan(entry_log)
    nan_flag = np.zeros(rows, dtype=bool)
    if entry_nan.any():
        nan_flag = np.bincount(owner[entry_nan], minlength=rows) > 0

    keys = owner * np.int64(num_nodes) + neighbours
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    best = np.full(len(unique_keys), -np.inf, dtype=np.float64)
    # NaN entries (unknown predicates) flow through here on purpose — the
    # lazy raise happens only if their node is actually expanded.
    with np.errstate(invalid="ignore"):
        np.maximum.at(best, inverse, entry_log)
    adj_owner = unique_keys // num_nodes
    adj_nbr = unique_keys % num_nodes
    adj_indptr = np.searchsorted(adj_owner, np.arange(rows + 1, dtype=np.int64))

    probabilities = np.where(adj_nbr < len(dense), dense[np.minimum(adj_nbr, max(len(dense) - 1, 0))], 0.0)
    kept = np.flatnonzero(probabilities > 0.0)
    kept_owner = adj_owner[kept]
    kept_probability = probabilities[kept]
    # (row, -probability, adjacency position): ascending neighbour id is
    # the adjacency position, so ties replicate the stable-sort order.
    order = np.lexsort((kept, -kept_probability, kept_owner))
    sorted_owner = kept_owner[order]
    # rank within each row, to apply the branch cap
    if len(sorted_owner):
        first = np.flatnonzero(
            np.concatenate(([True], sorted_owner[1:] != sorted_owner[:-1]))
        )
        segment_start = np.repeat(first, np.diff(np.concatenate((first, [len(sorted_owner)]))))
        rank = np.arange(len(sorted_owner), dtype=np.int64) - segment_start
    else:
        rank = np.zeros(0, dtype=np.int64)
    capped = order[rank < branch_cap]
    beam_take = kept[capped]
    beam_owner = adj_owner[beam_take]
    beam_counts = np.bincount(beam_owner, minlength=rows)
    beam_indptr = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(beam_counts, out=beam_indptr[1:])
    beam_child = adj_nbr[beam_take]
    beam_log = best[beam_take]
    beam_priority = -probabilities[beam_take]

    return CompiledContext(
        kg=kg,
        space=space,
        snapshot=snapshot,
        log_row=log_row,
        visiting=dense,
        branch_cap=branch_cap,
        num_nodes=num_nodes,
        node_row=node_row,
        row_node=in_scope,
        adj_indptr=adj_indptr,
        adj_nbr=adj_nbr,
        adj_log=best,
        beam_indptr=beam_indptr,
        beam_child=beam_child,
        beam_log=beam_log,
        beam_priority=beam_priority,
        nan_flag=nan_flag,
    )


# ---------------------------------------------------------------------------
# Flat-array best-first search
# ---------------------------------------------------------------------------
def search(
    context: CompiledContext,
    source: int,
    answer: int,
    repeat_factor: int,
    max_length: int,
    budget: int,
    stop_threshold: float | None,
    use_jit: bool = False,
) -> tuple[float, int, int, int]:
    """One best-first search; returns ``(similarity, paths, expansions, length)``.

    Pop-for-pop identical to ``CorrectnessValidator._search``: the heap
    carries ``(priority, tiebreak, slot)`` with parent-pointer paths, so
    comparisons never reach beyond the unique tiebreak and the pop order
    matches the reference tuple heap exactly.
    """
    if use_jit:
        jit = _ensure_jit()
        row = (
            int(context.node_row[source])
            if source < context.num_nodes
            else -1
        )
        if jit is not None and row >= 0:
            result = jit(
                context.adj_indptr,
                context.adj_nbr,
                context.adj_log,
                context.beam_indptr,
                context.beam_child,
                context.beam_log,
                context.beam_priority,
                context.node_row,
                context.nan_flag,
                context.visiting,
                source,
                answer,
                repeat_factor,
                max_length,
                budget,
                0.0 if stop_threshold is None else float(stop_threshold),
                stop_threshold is not None,
                context.branch_cap,
            )
            similarity, paths_found, expansions, best_length, bad_node = result
            if bad_node == -1:
                return float(similarity), int(paths_found), int(expansions), int(best_length)
            if bad_node >= 0:
                context._raise_unknown(int(bad_node))
            # bad_node == -2: unexpected out-of-scope pop — fall through to
            # the Python implementation, which handles it
    return _python_search(
        context, source, answer, repeat_factor, max_length, budget, stop_threshold
    )


def _python_search(
    context: CompiledContext,
    source: int,
    answer: int,
    repeat_factor: int,
    max_length: int,
    budget: int,
    stop_threshold: float | None,
) -> tuple[float, int, int, int]:
    visiting = context.visiting
    source_probability = float(visiting[source]) if source < len(visiting) else 0.0
    if source_probability <= 0.0:
        source_probability = 1.0
    # one packed (node, log_sum, parent slot, depth) record per heap entry
    slots = [(source, 0.0, -1, 0)]
    slots_append = slots.append
    heap: list[tuple[float, int, int]] = [(-source_probability, 0, 0)]
    tiebreak = 1

    best_similarity = 0.0
    best_length = 0
    paths_found = 0
    expansions = 0
    done = False
    context_beam = context.beam
    context_goal_map = context.goal_map
    while heap and not done and expansions < budget:
        _, _, slot = heappop(heap)
        node, log_sum, parent, depth = slots[slot]
        expansions += 1
        if depth >= max_length:
            continue
        beam = context_beam(node)  # raises on NaN edges, like _expand
        # on-path nodes via the parent chain (depth is at most max_length)
        path = [node]
        cursor = parent
        while cursor != -1:
            record = slots[cursor]
            path.append(record[0])
            cursor = record[2]
        goal_log = context_goal_map(node).get(answer)
        if goal_log is not None and answer not in path:
            similarity = math.exp((log_sum + goal_log) / (depth + 1))
            paths_found += 1
            if similarity > best_similarity:
                best_similarity = similarity
                best_length = depth + 1
            if paths_found >= repeat_factor or (
                stop_threshold is not None and best_similarity >= stop_threshold
            ):
                done = True
                continue
        child_depth = depth + 1
        for priority, child, log_similarity in beam:
            if child == answer or child in path:
                continue
            slot_id = len(slots)
            slots_append((child, log_sum + log_similarity, slot, child_depth))
            heappush(heap, (priority, tiebreak, slot_id))
            tiebreak += 1
    return best_similarity, paths_found, expansions, best_length


# ---------------------------------------------------------------------------
# Shared trace + per-answer replay
# ---------------------------------------------------------------------------
@dataclass
class SharedTrace:
    """The answer-independent pop sequence, compiled for sparse replay.

    The legacy replay walks every recorded pop per answer; here the goal
    and divergence conditions are *inverted* into neighbour-sorted tables
    (``goal_nbr``/``beam_nbr``), so one answer resolves to the handful of
    pops whose node is actually adjacent to it.  Pops that never mention
    the answer only contribute to the expansion count, which the replay
    recovers from the pop index.
    """

    total_pops: int
    pop_node: list
    pop_log: list
    pop_depth: list
    pop_path: list  # tuple of on-path node ids per pop
    pops_of: dict  # node -> [pop indices] (expanded pops only)
    goal_nbr: np.ndarray  # sorted neighbour ids over expanded nodes
    goal_node: np.ndarray  # owning (expanded) node per entry
    goal_log: np.ndarray
    beam_nbr: np.ndarray  # sorted beam-children ids over expanded nodes
    beam_node: np.ndarray


def build_trace(
    context: CompiledContext, source: int, max_length: int, budget: int
) -> SharedTrace:
    """Record the no-goal budgeted pop sequence (``_shared_pops`` compiled)."""
    visiting = context.visiting
    source_probability = float(visiting[source]) if source < len(visiting) else 0.0
    if source_probability <= 0.0:
        source_probability = 1.0
    slot_node = [source]
    slot_log = [0.0]
    slot_parent = [-1]
    slot_depth = [0]
    heap: list[tuple[float, int, int]] = [(-source_probability, 0, 0)]
    tiebreak = 1

    pop_node: list[int] = []
    pop_log: list[float] = []
    pop_depth: list[int] = []
    pop_path: list[tuple] = []
    pops_of: dict[int, list[int]] = {}
    expanded_order: dict[int, None] = {}
    expansions = 0
    while heap and expansions < budget:
        _, _, slot = heappop(heap)
        node = slot_node[slot]
        log_sum = slot_log[slot]
        depth = slot_depth[slot]
        index = expansions
        expansions += 1
        path = []
        cursor = slot
        while cursor != -1:
            path.append(slot_node[cursor])
            cursor = slot_parent[cursor]
        pop_node.append(node)
        pop_log.append(log_sum)
        pop_depth.append(depth)
        pop_path.append(tuple(path))
        if depth >= max_length:
            continue  # counted but not expanded, like the legacy trace
        beam = context.beam(node)  # raises on NaN edges
        pops_of.setdefault(node, []).append(index)
        expanded_order.setdefault(node, None)
        for priority, child, log_similarity in beam:
            if child in path:
                continue
            slot_id = len(slot_node)
            slot_node.append(child)
            slot_log.append(log_sum + log_similarity)
            slot_parent.append(slot)
            slot_depth.append(depth + 1)
            heappush(heap, (priority, tiebreak, slot_id))
            tiebreak += 1

    # Invert the expanded nodes' adjacency and beams into neighbour-sorted
    # lookup tables for O(log) per-answer relevance queries.
    goal_nbr_parts: list[np.ndarray] = []
    goal_node_parts: list[np.ndarray] = []
    goal_log_parts: list[np.ndarray] = []
    beam_nbr_parts: list[np.ndarray] = []
    beam_node_parts: list[np.ndarray] = []
    for node in expanded_order:
        nbr, logs = context.adjacency_arrays(node)
        goal_nbr_parts.append(np.asarray(nbr, dtype=np.int64))
        goal_node_parts.append(np.full(len(nbr), node, dtype=np.int64))
        goal_log_parts.append(np.asarray(logs, dtype=np.float64))
        children = np.fromiter(
            (child for _, child, _ in context.beam(node)), dtype=np.int64
        )
        beam_nbr_parts.append(children)
        beam_node_parts.append(np.full(len(children), node, dtype=np.int64))
    if goal_nbr_parts:
        goal_nbr = np.concatenate(goal_nbr_parts)
        goal_node = np.concatenate(goal_node_parts)
        goal_logs = np.concatenate(goal_log_parts)
        order = np.argsort(goal_nbr, kind="stable")
        goal_nbr = goal_nbr[order]
        goal_node = goal_node[order]
        goal_logs = goal_logs[order]
    else:
        goal_nbr = np.zeros(0, dtype=np.int64)
        goal_node = np.zeros(0, dtype=np.int64)
        goal_logs = np.zeros(0, dtype=np.float64)
    if beam_nbr_parts:
        beam_nbr = np.concatenate(beam_nbr_parts)
        beam_node = np.concatenate(beam_node_parts)
        order = np.argsort(beam_nbr, kind="stable")
        beam_nbr = beam_nbr[order]
        beam_node = beam_node[order]
    else:
        beam_nbr = np.zeros(0, dtype=np.int64)
        beam_node = np.zeros(0, dtype=np.int64)
    return SharedTrace(
        total_pops=expansions,
        pop_node=pop_node,
        pop_log=pop_log,
        pop_depth=pop_depth,
        pop_path=pop_path,
        pops_of=pops_of,
        goal_nbr=goal_nbr,
        goal_node=goal_node,
        goal_log=goal_logs,
        beam_nbr=beam_nbr,
        beam_node=beam_node,
    )


def replay(
    trace: SharedTrace,
    answer: int,
    repeat_factor: int,
    stop_threshold: float | None,
) -> tuple[float, int, int, int] | None:
    """Replay the shared trace for one answer; ``None`` means must search.

    Semantics match ``CorrectnessValidator._replay`` exactly — the goal
    shortcut fires off the recorded adjacency, termination counts the
    same expansions, and the first pop whose beam contains the answer
    while off-path aborts the replay — but only the pops whose node is
    adjacent to the answer (goal or beam table hit) are visited.
    """
    lo = int(np.searchsorted(trace.goal_nbr, answer, side="left"))
    hi = int(np.searchsorted(trace.goal_nbr, answer, side="right"))
    goal_map: dict[int, float] = {}
    for position in range(lo, hi):
        goal_map[int(trace.goal_node[position])] = float(trace.goal_log[position])
    lo = int(np.searchsorted(trace.beam_nbr, answer, side="left"))
    hi = int(np.searchsorted(trace.beam_nbr, answer, side="right"))
    beam_owners = {int(node) for node in trace.beam_node[lo:hi]}

    relevant_nodes = beam_owners.union(goal_map)
    if not relevant_nodes:
        return 0.0, 0, trace.total_pops, 0
    relevant: list[int] = []
    pops_of = trace.pops_of
    for node in relevant_nodes:
        indices = pops_of.get(node)
        if indices:
            relevant.extend(indices)
    relevant.sort()

    best_similarity = 0.0
    best_length = 0
    paths_found = 0
    pop_node = trace.pop_node
    pop_path = trace.pop_path
    pop_log = trace.pop_log
    pop_depth = trace.pop_depth
    for index in relevant:
        node = pop_node[index]
        answer_on_path = answer in pop_path[index]
        goal_log = goal_map.get(node)
        if goal_log is not None and not answer_on_path:
            depth = pop_depth[index]
            similarity = math.exp((pop_log[index] + goal_log) / (depth + 1))
            paths_found += 1
            if similarity > best_similarity:
                best_similarity = similarity
                best_length = depth + 1
            if paths_found >= repeat_factor or (
                stop_threshold is not None and best_similarity >= stop_threshold
            ):
                return best_similarity, paths_found, index + 1, best_length
        if node in beam_owners and not answer_on_path:
            return None
    return best_similarity, paths_found, trace.total_pops, best_length


# ---------------------------------------------------------------------------
# CNARW structural weights
# ---------------------------------------------------------------------------
def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values via sort + run mask.

    Equivalent to ``np.unique`` but measurably faster on these int64 key
    arrays (numpy 2.x routes ``unique`` through a hash table).
    """
    if len(values) == 0:
        return values
    ordered = np.sort(values)
    return ordered[np.concatenate(([True], ordered[1:] != ordered[:-1]))]


def cnarw_weights(
    snapshot,
    scope_nodes: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    floor: float = 0.05,
) -> np.ndarray:
    """``max(1 - |N(u) ∩ N(v)| / min(d(u), d(v)), floor)`` per (u, v) pair.

    The per-entry Python set intersections become one vectorised
    membership pass.  Like a set intersection (which iterates the smaller
    set), only each pair's *smaller* neighbourhood expands — crucial
    around hubs, whose huge neighbour lists would otherwise replicate
    into every incident pair — into ``(larger node, neighbour)`` probe
    keys resolved by binary search against one global sorted dedup
    adjacency table.  The arithmetic replays the reference expression
    operation for operation, so the weights are byte-identical to
    :meth:`SimpleTransitionModel._cnarw_weights`'s loop.
    """
    scope_nodes = np.asarray(scope_nodes, dtype=np.int64)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    num_nodes = np.int64(snapshot.num_nodes)
    left_nodes = scope_nodes[rows]
    right_nodes = scope_nodes[cols]
    pairs = len(rows)
    if pairs == 0:
        return np.zeros(0, dtype=np.float64)

    unique_nodes = _sorted_unique(np.concatenate((left_nodes, right_nodes)))
    owner, neighbours, _edge_ids = snapshot.gather_neighbors(unique_nodes)
    # deduplicate each node's neighbour multiset (the reference uses sets)
    keys = owner * num_nodes + neighbours
    unique_keys = _sorted_unique(keys)
    distinct_owner = unique_keys // num_nodes
    distinct_nbr = unique_keys % num_nodes
    degrees = np.bincount(distinct_owner, minlength=len(unique_nodes)).astype(np.int64)
    indptr = np.zeros(len(unique_nodes) + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])

    # O(1) node -> unique_nodes position gathers via a scatter table
    position = np.full(int(num_nodes), -1, dtype=np.int64)
    position[unique_nodes] = np.arange(len(unique_nodes), dtype=np.int64)
    left_index = position[left_nodes]
    right_index = position[right_nodes]
    left_degree = degrees[left_index]
    right_degree = degrees[right_index]

    # Expand each pair's smaller neighbourhood; probe the larger node's
    # adjacency in the global (owner index, neighbour) key table.
    left_is_small = left_degree <= right_degree
    small_index = np.where(left_is_small, left_index, right_index)
    large_index = np.where(left_is_small, right_index, left_index)
    small_degree = degrees[small_index]
    total = int(small_degree.sum())
    common = np.zeros(pairs, dtype=np.int64)
    if total and len(unique_keys):
        starts = indptr[small_index]
        cumulative = np.concatenate(([0], np.cumsum(small_degree)))
        gather = np.repeat(starts - cumulative[:-1], small_degree) + np.arange(
            total, dtype=np.int64
        )
        pair_of = np.repeat(np.arange(pairs, dtype=np.int64), small_degree)
        probe_keys = large_index[pair_of] * num_nodes + distinct_nbr[gather]
        positions = np.searchsorted(unique_keys, probe_keys)
        positions = np.minimum(positions, len(unique_keys) - 1)
        common_mask = unique_keys[positions] == probe_keys
        common = np.bincount(pair_of[common_mask], minlength=pairs)

    denominator = np.maximum(1, np.minimum(left_degree, right_degree))
    weights = np.maximum(1.0 - common / denominator, floor)
    return weights.astype(np.float64, copy=False)


# ---------------------------------------------------------------------------
# Chain-prefix enumeration
# ---------------------------------------------------------------------------
@dataclass
class ChainContext:
    """Flattened per-predicate enumeration context for chain prefixes.

    :func:`~repro.semantics.matching.best_matches_from` pays four Python
    calls per path extension — ``kg.neighbors``, ``kg.predicate_of``,
    ``space.similarity`` and ``clamp_similarity`` — and the batched
    chain-prefix driver re-pays them for every frontier node.  A chain
    context hoists all of it out of the hot loop once per ``(query
    predicate, graph structure version)``: the CSR snapshot's adjacency is
    unpacked into plain Python lists (list indexing beats numpy scalar
    extraction in an interpreter loop), each adjacency entry is mapped to
    its predicate id, and per-predicate edge log-similarities memoise into
    :attr:`predicate_log` *lazily* — an unknown predicate must keep
    raising only when a traversal actually touches one of its edges,
    exactly like the reference's per-edge lookup.

    The CSR arrays list every node's neighbours in the same order as
    ``KnowledgeGraph.neighbors``, so :func:`chain_matches` visits paths in
    the reference's exact order — which makes its tie-breaks (strict ``>``
    keeps the first-recorded match) and float accumulation identical.
    """

    query_predicate: str
    #: CSR ``indptr`` over adjacency entries, as a Python list
    indptr: list
    #: adjacency entry -> neighbour node id
    neighbours: list
    #: adjacency entry -> predicate id of the connecting edge
    entry_predicate: list
    #: predicate id -> ``log(clamp(similarity))`` or ``None`` (unresolved)
    predicate_log: list
    #: adjacency entry -> resolved edge log, or ``None`` (warm-path cache:
    #: one list probe per extension instead of entry -> predicate -> log)
    entry_log: list
    _kg: object
    _space: object
    _floor: float

    def resolve_predicate(self, predicate_id: int) -> float:
        """Compute + memoise one predicate's edge log-similarity.

        Raises through ``space.similarity`` for predicates the embedding
        does not cover, at first-touch time like the reference DFS.
        """
        value = math.log(
            clamp_similarity(
                self._space.similarity(
                    self._kg.predicate_name(predicate_id), self.query_predicate
                ),
                self._floor,
            )
        )
        self.predicate_log[predicate_id] = value
        return value


def build_chain_context(
    kg, space, snapshot, query_predicate: str, floor: float
) -> ChainContext:
    """Compile one predicate's chain-enumeration context from a CSR snapshot."""
    entry_predicate = snapshot.edge_predicate_ids[snapshot.edge_ids].tolist()
    return ChainContext(
        query_predicate=query_predicate,
        indptr=snapshot.indptr.tolist(),
        neighbours=snapshot.neighbor_ids.tolist(),
        entry_predicate=entry_predicate,
        predicate_log=[None] * len(kg.predicates),
        entry_log=[None] * len(entry_predicate),
        _kg=kg,
        _space=space,
        _floor=floor,
    )


def chain_matches(
    context: ChainContext,
    source: int,
    max_length: int,
    target_set: frozenset | set | None,
    budget_per_level: int,
) -> dict:
    """``best_matches_iterative`` over a compiled context.

    Returns ``{node: (similarity, path length)}`` — the two fields the
    chain-prefix arithmetic consumes — with the same keys, values and
    *insertion order* as the reference (order matters: the caller's
    best-mean scan breaks similarity ties by iteration order).  Iterative
    deepening, per-level budgets and the merge rule are replicated
    verbatim.
    """
    merged: dict = {}
    for depth in range(1, max_length + 1):
        level = _chain_level(context, source, depth, target_set, budget_per_level)
        for node, entry in level.items():
            current = merged.get(node)
            if current is None or entry[0] > current[0]:
                merged[node] = entry
    return merged


def _chain_level(
    context: ChainContext,
    source: int,
    max_length: int,
    target_set,
    max_expansions: int,
) -> dict:
    """One budgeted depth-limited DFS pass, statement-for-statement equal
    to :func:`repro.semantics.matching.best_matches_from` (minus the path
    tuples, which chain-prefix callers never read)."""
    indptr = context.indptr
    neighbours = context.neighbours
    entry_log = context.entry_log
    exp = math.exp

    best: dict = {}
    expansions = 0
    depth = 0  # == len(edge_path) in the reference
    log_sum = 0.0
    log_stack: list = []
    on_path = {source}
    # the active frame lives in locals; only suspended frames hit the stacks
    node_stack: list = []
    index_stack: list = []
    end_stack: list = []
    node = source
    index = indptr[source]
    end = indptr[source + 1]

    while True:
        if index >= end or expansions >= max_expansions:
            if depth:
                depth -= 1
                log_sum -= log_stack.pop()
            if node != source:
                on_path.discard(node)
            if not node_stack:
                break
            node = node_stack.pop()
            index = index_stack.pop()
            end = end_stack.pop()
            continue
        neighbour = neighbours[index]
        index += 1
        if neighbour in on_path:
            continue
        expansions += 1
        log_similarity = entry_log[index - 1]
        if log_similarity is None:
            log_similarity = _resolve_entry(context, index - 1)
        log_sum += log_similarity
        log_stack.append(log_similarity)
        depth += 1
        if target_set is None or neighbour in target_set:
            similarity = exp(log_sum / depth)
            current = best.get(neighbour)
            if current is None or similarity > current[0]:
                best[neighbour] = (similarity, depth)
        if depth < max_length:
            on_path.add(neighbour)
            node_stack.append(node)
            index_stack.append(index)
            end_stack.append(end)
            node = neighbour
            index = indptr[neighbour]
            end = indptr[neighbour + 1]
        else:
            depth -= 1
            log_sum -= log_stack.pop()
    return best


def _resolve_entry(context: ChainContext, entry: int) -> float:
    """Cold-path entry-log fill: predicate table first, embedding second."""
    predicate_id = context.entry_predicate[entry]
    value = context.predicate_log[predicate_id]
    if value is None:
        value = context.resolve_predicate(predicate_id)
    context.entry_log[entry] = value
    return value
