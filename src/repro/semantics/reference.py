"""The seed per-answer validator, preserved as an equivalence oracle.

PR 2 moved correctness validation behind the batched validation service
(:meth:`repro.semantics.validation.CorrectnessValidator.validate_batch`)
with array-valued visiting probabilities.  This module keeps the seed's
dict-probing implementation — per-neighbour ``in`` tests and probability
lookups against the ``{node_id: probability}`` mapping, a tuple-sorted
successor beam — exactly as the engine's ``_ensure_validated`` drove it one
entry at a time.  It is the "before" side of
``benchmarks/bench_perf_validation.py`` and the oracle for the batch
equivalence tests: for identical inputs the two implementations must
return identical :class:`ValidationOutcome`\\ s.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Mapping

import numpy as np

from repro.embedding.predicate_space import PredicateVectorSpace
from repro.kg.csr import csr_snapshot
from repro.kg.graph import KnowledgeGraph
from repro.semantics.similarity import SIMILARITY_FLOOR, require_known_predicates
from repro.semantics.validation import (
    DEFAULT_BRANCH_CAP,
    DEFAULT_EXPANSION_BUDGET,
    ValidationOutcome,
)


class ReferenceValidator:
    """Seed best-first path search with dict-probed visiting probabilities."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        *,
        repeat_factor: int = 3,
        max_length: int = 3,
        floor: float = SIMILARITY_FLOOR,
        expansion_budget: int = DEFAULT_EXPANSION_BUDGET,
        branch_cap: int = DEFAULT_BRANCH_CAP,
    ) -> None:
        self._kg = kg
        self._space = space
        self.repeat_factor = repeat_factor
        self.max_length = max_length
        self.floor = floor
        self.expansion_budget = expansion_budget
        self.branch_cap = branch_cap
        self._cache_key: tuple[str, int] | None = None
        self._children: dict[int, list[tuple[float, int, float]]] = {}
        self._adjacency: dict[int, dict[int, float]] = {}
        self._log_row: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _reset_cache(self, query_predicate: str, visiting_id: int) -> None:
        key = (query_predicate, visiting_id)
        if self._cache_key != key:
            self._cache_key = key
            self._children.clear()
            self._adjacency.clear()
            self._log_row = None

    def _log_similarities(self, query_predicate: str) -> np.ndarray:
        if self._log_row is None:
            row = self._space.known_similarity_row(
                query_predicate, self._kg.predicates
            )
            with np.errstate(invalid="ignore"):
                self._log_row = np.log(np.clip(row, self.floor, 1.0))
        return self._log_row

    def _expand(
        self,
        node: int,
        query_predicate: str,
        visiting_probabilities: Mapping[int, float],
    ) -> tuple[list[tuple[float, int, float]], dict[int, float]]:
        children = self._children.get(node)
        if children is not None:
            return children, self._adjacency[node]
        snapshot = csr_snapshot(self._kg)
        edge_ids, neighbours = snapshot.neighbors(node)
        predicate_ids = snapshot.edge_predicate_ids[edge_ids]
        log_similarities = self._log_similarities(query_predicate)[predicate_ids]
        require_known_predicates(
            self._kg, self._space, predicate_ids, log_similarities
        )
        distinct, inverse = np.unique(neighbours, return_inverse=True)
        best = np.full(len(distinct), -np.inf, dtype=np.float64)
        np.maximum.at(best, inverse, log_similarities)
        adjacency = dict(zip(distinct.tolist(), best.tolist()))
        beam = sorted(
            (
                (-visiting_probabilities[neighbour], neighbour, log_similarity)
                for neighbour, log_similarity in adjacency.items()
                if neighbour in visiting_probabilities
            ),
        )[: self.branch_cap]
        self._children[node] = beam
        self._adjacency[node] = adjacency
        return beam, adjacency

    # ------------------------------------------------------------------
    def validate(
        self,
        source: int,
        answer: int,
        query_predicate: str,
        visiting_probabilities: Mapping[int, float],
        stop_threshold: float | None = None,
    ) -> ValidationOutcome:
        """The seed's per-answer search; see the live validator's docstring."""
        self._reset_cache(query_predicate, id(visiting_probabilities))
        best_similarity = 0.0
        best_length = 0
        paths_found = 0
        expansions = 0
        tie_breaker = itertools.count()

        heap: list[tuple[float, int, int, float, tuple[int, ...]]] = [
            (-visiting_probabilities.get(source, 1.0), next(tie_breaker), source,
             0.0, (source,))
        ]
        done = False
        while heap and not done and expansions < self.expansion_budget:
            _, _, node, log_sum, on_path = heapq.heappop(heap)
            depth = len(on_path) - 1
            expansions += 1
            if depth >= self.max_length:
                continue
            beam, adjacency = self._expand(
                node, query_predicate, visiting_probabilities
            )
            goal_log = adjacency.get(answer)
            if goal_log is not None and answer not in on_path:
                similarity = math.exp((log_sum + goal_log) / (depth + 1))
                paths_found += 1
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_length = depth + 1
                if paths_found >= self.repeat_factor or (
                    stop_threshold is not None
                    and best_similarity >= stop_threshold
                ):
                    done = True
                    continue
            for priority, child, log_similarity in beam:
                if child == answer or child in on_path:
                    continue
                heapq.heappush(
                    heap,
                    (
                        priority,
                        next(tie_breaker),
                        child,
                        log_sum + log_similarity,
                        on_path + (child,),
                    ),
                )
        return ValidationOutcome(
            answer=answer,
            similarity=best_similarity,
            paths_found=paths_found,
            expansions=expansions,
            best_length=best_length,
        )
