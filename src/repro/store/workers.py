"""Multi-process execution for the serving layer.

:class:`WorkerPool` owns N long-lived worker processes plus one
:class:`~repro.store.shared.SharedSnapshotStore`.  The CSR snapshot is
published through shared memory before the pool starts (workers install
it instead of compiling their own), and every :class:`QueryPlan` a round
references is published once as artefact segments — workers attach by
name and rebuild a plan replica around the shared arrays, so neither the
graph arrays nor any plan artefact is pickled per round.  Only the small
:class:`~repro.core.executor.RoundWorkItem` payloads travel the queue.

Determinism: sampling (the only RNG) runs in the parent before export;
validation, estimation and the BLB guarantee are deterministic functions
of the item plus the shared artefacts, so a worker's
:class:`~repro.core.executor.RoundWorkResult` is byte-identical to what
the cooperative scheduler would have computed in-process — the
equivalence tests and the parallel benchmark's gate assert exactly that.

With the ``fork`` start method (Linux) workers inherit the graph and
embedding copy-on-write at pool creation; with ``spawn`` they receive one
pickled copy at startup.  Either way, a graph mutated (structurally *or*
attribute-wise) after pool creation makes the workers stale:
:meth:`WorkerPool.fresh` reports this and the process backend falls back
to in-process execution for correctness.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace

from repro.core.config import EngineConfig
from repro.core.executor import (
    STAGE_IPC,
    PrewarmWorkItem,
    QueryExecutor,
    RoundWorkItem,
    apply_prewarm_result,
    apply_round_result,
    execute_prewarm_item,
    execute_round_item,
    export_round_item,
    memo_delta,
)
from repro.core.plan import PlanArtifacts, QueryPlan, extract_artifacts, plan_from_artifacts
from repro.core.planner import build_validator
from repro.core.resilience import RetryPolicy
from repro.core.service import ExecutionBackend
from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import ServiceError
from repro.kg.csr import csr_from_arrays, csr_snapshot, install_snapshot
from repro.kg.graph import KnowledgeGraph
from repro.obs.metrics import MetricsRegistry
from repro.store.shared import SharedSnapshotStore

__all__ = ["WorkerPool", "ProcessBackend", "default_worker_count"]


def default_worker_count() -> int:
    """Worker processes/threads to use when the caller does not say."""
    return max(1, os.cpu_count() or 1)


def _pickle_spec(plan: QueryPlan) -> dict:
    """The small picklable facet of a plan (arrays travel via shm)."""
    artifacts = extract_artifacts(plan)
    return {
        "component": artifacts.component,
        "source": artifacts.source,
        "walk_iterations": artifacts.walk_iterations,
        "num_candidates": artifacts.num_candidates,
        "is_chain": artifacts.is_chain,
        "chain_truncated": artifacts.chain_truncated,
    }


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------
class _WorkerContext:
    """Per-process state: the graph, plan replicas, attached segments."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        config: EngineConfig,
    ) -> None:
        self.kg = kg
        self.space = space
        self.config = config
        self._executors: dict[str, QueryExecutor] = {}
        self._plans: dict[str, QueryPlan] = {}
        #: token -> (joint, attached segment); LRU-bounded, see resolve_joint
        self._joints: dict[str, tuple] = {}
        self._attached: list = []

    def executor_for(self, config: EngineConfig) -> QueryExecutor:
        """One executor per distinct config (per-query confidence overrides)."""
        key = repr(config)
        executor = self._executors.get(key)
        if executor is None:
            executor = QueryExecutor(self.kg, self.space, config, planner=None)
            self._executors[key] = executor
        return executor

    #: attached per-query joints kept per worker; tokens are never
    #: reused, so this is a plain bounded cache — old entries belong to
    #: finished (parent-side released) queries and can be dropped
    JOINT_CACHE_LIMIT = 64

    def resolve_joint(self, ticket: dict):
        """The (cached) shared joint distribution for one query state."""
        from repro.sampling.collector import AnswerDistribution

        token = ticket["token"]
        cached = self._joints.get(token)
        if cached is not None:
            self._joints[token] = self._joints.pop(token)  # LRU touch
            return cached[0]
        attached = SharedSnapshotStore.attach(ticket["manifest"])
        joint = AnswerDistribution(
            answers=attached.arrays["answers"],
            probabilities=attached.arrays["probabilities"],
        )
        self._joints[token] = (joint, attached)
        while len(self._joints) > self.JOINT_CACHE_LIMIT:
            oldest = next(iter(self._joints))  # dicts iterate oldest-first
            _old_joint, old_attached = self._joints.pop(oldest)
            old_attached.close()
        return joint

    def resolve_plan(self, ticket: dict) -> QueryPlan:
        """The replica for one plan ticket, attaching its segments once."""
        token = ticket["token"]
        plan = self._plans.get(token)
        if plan is not None:
            return plan
        attached = SharedSnapshotStore.attach(ticket["manifest"])
        self._attached.append(attached)
        spec = ticket["spec"]
        artifacts = PlanArtifacts(
            component=spec["component"],
            source=spec["source"],
            answers=attached.arrays["answers"],
            probabilities=attached.arrays["probabilities"],
            visiting=attached.arrays["visiting"],
            walk_iterations=spec["walk_iterations"],
            num_candidates=spec["num_candidates"],
            is_chain=spec["is_chain"],
            chain_routes={},  # routes are sampling-side; workers only validate
            chain_truncated=spec["chain_truncated"],
        )
        plan = plan_from_artifacts(
            artifacts, build_validator(self.kg, self.space, self.config)
        )
        self._plans[token] = plan
        return plan


#: the per-process context, set by the pool initializer
_CONTEXT: _WorkerContext | None = None


def _worker_init(
    kg: KnowledgeGraph,
    space: PredicateVectorSpace,
    config: EngineConfig,
    snapshot_manifest: dict | None,
) -> None:
    global _CONTEXT
    _CONTEXT = _WorkerContext(kg, space, config)
    if snapshot_manifest is not None:
        attached = SharedSnapshotStore.attach(snapshot_manifest)
        _CONTEXT._attached.append(attached)
        snapshot = csr_from_arrays(attached.metadata, attached.arrays)
        # spawn-started workers get the shared CSR instead of compiling
        # their own; fork-started workers inherited the parent's anyway
        install_snapshot(kg, snapshot)


def _require_context() -> _WorkerContext:
    if _CONTEXT is None:  # pragma: no cover - initializer always runs
        raise ServiceError("worker context missing: pool initializer did not run")
    return _CONTEXT


def _apply_worker_fault(fault: dict | None) -> None:
    """Execute an injected fault payload inside the worker process.

    ``crash`` exits from *inside* the task function — the worker holds no
    queue lock here, so the pool's queues stay intact and exactly this
    job is lost, deterministically (an external kill races task pickup
    and may lose nothing, or corrupt the inqueue).  ``hang`` and
    ``raise`` simulate a slow and a faulty worker.  No-op (production)
    when ``fault`` is None.
    """
    if not fault:
        return
    action = fault.get("action")
    if action == "crash":
        os._exit(70)  # EX_SOFTWARE: simulated worker death mid-round
    if action == "hang":
        time.sleep(float(fault.get("seconds", 0.0)))
    elif action == "raise":
        raise ServiceError(fault.get("message") or "injected worker fault")


def _worker_round(
    payload: tuple[RoundWorkItem, tuple[dict, ...], dict, dict | None]
):
    """Pool target: execute one exported round against shared segments."""
    item, tickets, joint_ticket, fault = payload
    _apply_worker_fault(fault)
    context = _require_context()
    plans = [context.resolve_plan(ticket) for ticket in tickets]
    joint = context.resolve_joint(joint_ticket)
    executor = context.executor_for(item.config)
    result = execute_round_item(item, plans, joint, executor)
    # pid-stamp the result: the parent's memo version table records which
    # worker's replicas are warm with this round's entries
    return replace(result, worker_pid=os.getpid())


def _worker_prewarm(payload: tuple[PrewarmWorkItem, dict, dict | None]):
    """Pool target: one cross-query validation batch for a shared plan."""
    item, ticket, fault = payload
    _apply_worker_fault(fault)
    context = _require_context()
    plan = context.resolve_plan(ticket)
    executor = context.executor_for(item.config)
    result = execute_prewarm_item(item, plan, executor)
    return replace(result, worker_pid=os.getpid())


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------
# repro: ignore[REP201] single-writer: all mutation runs on the owning scheduler thread
class WorkerPool:
    """N worker processes sharing one published snapshot + plan store.

    Thread contract: single-writer.  All mutating methods run on the
    scheduler thread that owns the enclosing backend; no lock is taken
    because none is shared.  Cross-thread observability reads flow
    through registry counters, which carry their own locks.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        config: EngineConfig,
        *,
        workers: int | None = None,
        start_method: str | None = None,
        respawn_counter=None,
    ) -> None:
        self.workers = workers if workers is not None else default_worker_count()
        if self.workers < 1:
            raise ServiceError("a worker pool needs at least one worker")
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            raise ServiceError(
                f"start method {start_method!r} unavailable (have {methods})"
            )
        self.start_method = start_method
        self._kg = kg
        self._graph_version = kg.version
        self._store = SharedSnapshotStore()
        #: id(plan) -> (plan, ticket).  The *strong* plan reference is
        #: load-bearing: it pins the id for the pool's lifetime, so a
        #: PlanCache-evicted plan can never be garbage-collected and have
        #: its address reused by a different plan that would then resolve
        #: to the old plan's shared segments.  Published segments live
        #: until :meth:`close` — the shm footprint tracks published plans
        #: exactly, like the tickets themselves.
        self._tickets: dict[int, tuple[QueryPlan, dict]] = {}
        #: id(state) -> (state, ticket) for per-query joint distributions,
        #: pinned for the same id-reuse reason as ``_tickets``
        self._joints: dict[int, tuple[object, dict]] = {}
        self._token_counter = 0
        self._closed = False
        #: how many times a broken pool has been replaced (supervision)
        self.respawns = 0
        #: observability mirror of :attr:`respawns` (a repro.obs counter
        #: owned by the backend); every respawn increments both, so the
        #: /metrics view never disagrees with the plain attribute
        self._respawn_counter = respawn_counter
        #: (plan token, worker pid) -> (similarity, chain) memo lengths the
        #: worker's replica is known to hold; the floor of these over the
        #: live pid set bounds what a round item may omit (see
        #: :meth:`memo_floors`)
        self._memo_versions: dict[tuple[str, int], tuple[int, int]] = {}

        # Publish the CSR snapshot before any worker exists: fork-started
        # workers inherit the compiled snapshot copy-on-write, spawn-started
        # ones install the shared segments instead of compiling their own.
        snapshot = csr_snapshot(kg)
        metadata, arrays = snapshot.export_arrays()
        snapshot_manifest = self._store.publish("csr-snapshot", metadata, arrays)
        self._context = multiprocessing.get_context(start_method)
        #: kept verbatim for respawn(): the manifest stays published, so
        #: a replacement pool attaches the same shared segments
        self._initargs = (kg, space, config, snapshot_manifest)
        # a classic Pool forks/spawns all workers eagerly, *here*, in the
        # caller's thread — not lazily from the scheduler thread later
        self._pool = self._spawn_pool()

    def _spawn_pool(self):
        return self._context.Pool(
            processes=self.workers,
            initializer=_worker_init,
            initargs=self._initargs,
        )

    # ------------------------------------------------------------------
    def fresh(self) -> bool:
        """True while the workers' graph copy matches the live graph.

        Keys on ``version`` (structure *and* attributes): workers screen
        attribute filters themselves, so even attribute-only writes make
        their inherited copy stale.
        """
        return self._kg.version == self._graph_version

    def worker_pids(self) -> frozenset[int]:
        """The pids of the pool's current worker processes.

        This is the liveness signal the supervisor polls:
        ``multiprocessing.Pool``'s maintenance thread quietly replaces a
        dead worker with a fresh process, so exitcodes are unreliable —
        but the replacement changes the pid set, and *any* change since a
        job was dispatched means some worker died and may have taken its
        in-flight job with it.
        """
        return frozenset(proc.pid for proc in self._pool._pool)

    def kill_worker(self) -> int | None:
        """Hard-kill one live worker process (crash drills); its pid.

        Prefer a ``crash_worker`` :class:`~repro.core.resilience.FaultSpec`
        in tests — the worker then exits *inside* a chosen job, which is
        deterministic; an external kill races task pickup.
        """
        for proc in self._pool._pool:
            if proc.is_alive():
                proc.kill()
                return proc.pid
        return None

    def respawn(self) -> None:
        """Replace a broken pool with a fresh one; published state survives.

        The snapshot store, every plan/joint ticket and the pinned plan
        references are untouched: the manifests stay valid, so respawned
        workers attach the same shared segments on first use and no
        artefact is republished.  ``fresh()`` is deliberately *not*
        reset — a respawn recovers from a crash, it is not a statement
        that the workers' graph copy caught up with parent mutations
        (plan segments were extracted from the original plans either
        way).
        """
        if self._closed:
            raise ServiceError("the worker pool has been closed")
        old = self._pool
        old.terminate()
        old.join()
        self._pool = self._spawn_pool()
        self.respawns += 1
        if self._respawn_counter is not None:
            self._respawn_counter.inc()
        # fresh processes hold no replica memos; the next round per plan
        # ships a full snapshot again
        self._memo_versions.clear()

    def ticket_for(self, plan: QueryPlan) -> dict:
        """The (cached) shm ticket for ``plan``, publishing on first use."""
        cached = self._tickets.get(id(plan))
        if cached is not None:
            return cached[1]
        if self._closed:
            # a serving-lifecycle failure, not a store-format one: the
            # segments were fine, the pool's life simply ended
            raise ServiceError("the worker pool has been closed")
        token = f"plan-{self._token_counter}"
        self._token_counter += 1
        artifacts = extract_artifacts(plan)
        manifest = self._store.publish(token, {"token": token}, artifacts.arrays())
        ticket = {
            "token": token,
            "manifest": manifest,
            "spec": _pickle_spec(plan),
        }
        self._tickets[id(plan)] = (plan, ticket)
        return ticket

    def memo_floors(
        self, plans: list[QueryPlan]
    ) -> tuple[tuple[int, int], ...]:
        """Per-plan ``(similarity, chain)`` memo floors for delta shipping.

        The floor is the componentwise minimum of the recorded versions
        over the pool's *current* pids — ``apply_async`` does not let the
        parent pick the executing worker, so an item may only omit what
        every live worker already holds.  An unknown (plan, pid) pair
        counts as 0 (full snapshot).  Floors are additionally clamped to
        the live memo lengths, so even if some code path ever shrank a
        plan memo the delta slice could not silently skip live entries.

        Over-approximation is safe by design: memo entries are
        deterministic pure values, so a worker that is missing some
        entries merely recomputes identical values — outcomes are
        byte-identical either way, only the (re)computation is wasted.
        """
        pids = self.worker_pids()
        floors: list[tuple[int, int]] = []
        for plan in plans:
            cached = self._tickets.get(id(plan))
            if cached is None or not pids:
                floors.append((0, 0))
                continue
            token = cached[1]["token"]
            versions = [
                self._memo_versions.get((token, pid), (0, 0)) for pid in pids
            ]
            floors.append(
                (
                    min(
                        min(version[0] for version in versions),
                        len(plan.similarity_cache),
                    ),
                    min(
                        min(version[1] for version in versions),
                        len(plan.chain_prefix_memo),
                    ),
                )
            )
        return tuple(floors)

    def commit_memo_versions(self, plans: list[QueryPlan], pid: int) -> None:
        """Record that worker ``pid``'s replicas are warm up to the live memos.

        Called after a worker's result merged into the live plans: the
        worker holds everything it was shipped plus everything it
        computed.  When rounds for one plan interleave across workers the
        live length can over-state a single worker's holdings; that only
        makes a future delta omit entries the worker then deterministically
        recomputes once (see :meth:`memo_floors`).
        """
        if pid < 0:
            return
        for plan in plans:
            cached = self._tickets.get(id(plan))
            if cached is None:
                continue
            key = (cached[1]["token"], int(pid))
            old = self._memo_versions.get(key, (0, 0))
            self._memo_versions[key] = (
                max(old[0], len(plan.similarity_cache)),
                max(old[1], len(plan.chain_prefix_memo)),
            )

    def joint_ticket_for(self, state) -> dict:
        """The shm ticket for a query state's (immutable) joint distribution.

        Published once per state and pinned like plan tickets (same
        id-reuse hazard): every later round of the query ships a few
        bytes of manifest instead of the num_candidates-sized answer and
        probability arrays.
        """
        cached = self._joints.get(id(state))
        if cached is not None:
            return cached[1]
        if self._closed:
            raise ServiceError("the worker pool has been closed")
        token = f"joint-{self._token_counter}"
        self._token_counter += 1
        manifest = self._store.publish(
            token,
            {"token": token},
            {
                "answers": state.joint.answers,
                "probabilities": state.joint.probabilities,
            },
        )
        ticket = {"token": token, "manifest": manifest}
        self._joints[id(state)] = (state, ticket)
        return ticket

    def release_state(self, state) -> None:
        """Drop a query state's pin + shared segment (run finished).

        Keeps a long-lived service bounded: without this, every query
        ever served would stay pinned (state, support arrays, shm block)
        until :meth:`close`.  A later ``refine()`` on the same state
        simply republishes under a fresh token.  Workers that attached
        the old segment hold their mapping open, so an in-flight round
        racing this release still reads valid pages.
        """
        entry = self._joints.pop(id(state), None)
        if entry is not None and not self._closed:
            self._store.unpublish(entry[1]["token"])

    def dispatch_round(
        self,
        item: RoundWorkItem,
        plans: list[QueryPlan],
        state,
        fault: dict | None = None,
    ):
        """Submit one round; returns the pool's async result handle.

        ``fault`` is an injected worker-side payload (tests only; see
        :func:`_apply_worker_fault`) — None, and free, in production.
        """
        tickets = tuple(self.ticket_for(plan) for plan in plans)
        if len(plans) == 1 and state.joint is plans[0].distribution:
            # the common single-component case: the joint IS the plan's
            # answer distribution, whose segment (answers/probabilities)
            # is already published — alias it instead of copying it into
            # a second per-query block
            joint_ticket = {
                "token": f"{tickets[0]['token']}:joint",
                "manifest": tickets[0]["manifest"],
            }
        else:
            joint_ticket = self.joint_ticket_for(state)
        return self._pool.apply_async(
            _worker_round, ((item, tickets, joint_ticket, fault),)
        )

    def dispatch_prewarm(
        self, item: PrewarmWorkItem, plan: QueryPlan, fault: dict | None = None
    ):
        """Submit one cross-query validation batch."""
        ticket = self.ticket_for(plan)
        return self._pool.apply_async(_worker_prewarm, ((item, ticket, fault),))

    def close(self) -> None:
        """Terminate the workers and unlink every shared segment."""
        if self._closed:
            return
        self._closed = True
        self._pool.terminate()
        self._pool.join()
        self._store.close()
        self._tickets.clear()
        self._joints.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


@dataclass(eq=False)
class _PendingWork:
    """One dispatched job under supervision (a round or a prewarm batch)."""

    item: object
    #: round jobs
    record: object = None
    run: object = None
    state: object = None
    #: prewarm jobs
    job: object = None
    #: dispatch state
    handle: object = None
    pids: frozenset = field(default_factory=frozenset)
    attempts: int = 1
    #: perf_counter right after growth, before export: the start of the
    #: round's transport window (the ``ipc`` stage bucket)
    export_started: float = 0.0
    #: the query's ``round`` span for this dispatch (None when tracing off)
    span: object = None
    #: terminal state (exactly one ends up set / True)
    result: object = None
    error: BaseException | None = None
    needs_fallback: bool = False  # retry budget spent: run in-process
    abandoned: bool = False  # service closing mid-await
    skipped: bool = False  # record settled (cancel/close) before dispatch


class ProcessBackend(ExecutionBackend):
    """``backend="processes"``: whole rounds fan out to a WorkerPool.

    Every kind of round — guaranteed aggregates, GROUP-BY, MAX/MIN — and
    the cohort pre-warm batches execute in worker processes; growth (the
    only RNG) stays in the scheduler thread, so fixed-seed results are
    byte-identical to the cooperative backend.  Merging is deterministic
    — see :func:`repro.core.executor.apply_round_result`.

    The backend also *supervises* the pool: a worker death (OOM kill,
    segfault) is detected by polling the pool's pid set while awaiting
    results, already-finished results are salvaged, the pool is respawned
    against the still-published snapshot store, and the lost jobs are
    re-dispatched — byte-identical, because the exported items carry the
    already-grown sample.  A job that exhausts
    :class:`~repro.core.resilience.RetryPolicy.max_attempts` executes
    in-process instead (the same code path workers run), extending the
    stale-graph fallback.  :attr:`local_fallbacks` counts in-process
    slots, :attr:`retries` counts re-dispatches; pool respawns are on
    ``pool.respawns`` — all surfaced through :meth:`health`.
    """

    name = "processes"

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        config: EngineConfig,
        *,
        workers: int | None = None,
        start_method: str | None = None,
        retry: RetryPolicy | None = None,
        memo_deltas: bool = True,
        registry=None,
    ) -> None:
        # Counter bookkeeping lives on the observability registry
        # (scope ``workers``): each counter carries its own lock, so
        # health() polled from another thread mid-respawn reads each
        # tally atomically instead of racing plain ``+=`` writes.  A
        # standalone backend (no owning service) gets a private registry.
        registry = registry if registry is not None else MetricsRegistry()
        scope = registry.scope("workers")
        self._c_respawns = scope.counter(
            "respawns_total", "Worker pools replaced after a crash"
        )
        self._c_retries = scope.counter(
            "retries_total", "Lost rounds re-dispatched after a respawn"
        )
        self._c_local_fallbacks = scope.counter(
            "local_fallbacks_total",
            "Slots executed in-process (stale pool or retry budget spent)",
        )
        self._c_memo_entries_shipped = scope.counter(
            "memo_entries_shipped_total",
            "Memo entries serialised to workers (delta or full)",
        )
        self._c_memo_entries_saved = scope.counter(
            "memo_entries_saved_total",
            "Memo entries delta shipping avoided serialising",
        )
        self._c_delta_dispatches = scope.counter(
            "delta_dispatches_total", "Dispatches that carried memo deltas"
        )
        self._c_full_dispatches = scope.counter(
            "full_dispatches_total", "Dispatches that carried full memos"
        )
        self._pool = WorkerPool(
            kg,
            space,
            config,
            workers=workers,
            start_method=start_method,
            respawn_counter=self._c_respawns,
        )
        self.retry = retry if retry is not None else RetryPolicy()
        #: ship memo deltas instead of full snapshots (see
        #: :meth:`WorkerPool.memo_floors`); off = every round carries the
        #: plans' complete verdict memos, like the original protocol
        self.memo_deltas = memo_deltas

    @property
    def workers(self) -> int:
        """Number of worker processes."""
        return self._pool.workers

    # -- counter read-throughs (attribute compatibility) ----------------
    @property
    def local_fallbacks(self) -> int:
        """Slots executed in-process because the pool went stale or a
        job's retry budget ran out; stays 0 for a clean graph and a
        healthy pool — asserted by the backend tests."""
        return int(self._c_local_fallbacks.value)

    @property
    def retries(self) -> int:
        """Lost jobs re-dispatched after a pool respawn."""
        return int(self._c_retries.value)

    @property
    def memo_entries_shipped(self) -> int:
        """Memo entries actually shipped to workers (delta or full)."""
        return int(self._c_memo_entries_shipped.value)

    @property
    def memo_entries_saved(self) -> int:
        """Memo entries delta mode avoided shipping."""
        return int(self._c_memo_entries_saved.value)

    @property
    def delta_dispatches(self) -> int:
        """Dispatches that carried memo deltas."""
        return int(self._c_delta_dispatches.value)

    @property
    def full_dispatches(self) -> int:
        """Dispatches that carried full memo snapshots."""
        return int(self._c_full_dispatches.value)

    @property
    def pool(self) -> WorkerPool:
        """The underlying worker pool (teardown tests)."""
        return self._pool

    def health(self) -> dict:
        # key names are part of the serving contract (tests + /healthz);
        # the values are atomic counter reads, so a poll racing a respawn
        # never observes a torn update
        return {
            "backend": self.name,
            "workers": self.workers,
            "respawns": int(self._c_respawns.value),
            "retries": self.retries,
            "local_fallbacks": self.local_fallbacks,
            "memo_deltas": self.memo_deltas,
            "memo_entries_shipped": self.memo_entries_shipped,
            "memo_entries_saved": self.memo_entries_saved,
            "delta_dispatches": self.delta_dispatches,
            "full_dispatches": self.full_dispatches,
        }

    def _count_shipment(self, memos, chain_memos, totals) -> None:
        """Track shipped-vs-saved memo entry counts for :meth:`health`."""
        shipped = sum(len(memo) for memo in memos) + sum(
            len(memo) for memo in chain_memos
        )
        self._c_memo_entries_shipped.inc(shipped)
        self._c_memo_entries_saved.inc(max(0, totals - shipped))

    # -- ExecutionBackend interface ------------------------------------
    def run_cohort(self, service, cohort) -> None:
        usable = self._pool.fresh()
        if not usable:
            # mutated graph under a live pool: stale workers would serve
            # old attribute values — run every slot in-process instead
            self._c_local_fallbacks.inc(len(cohort))
            for record in cohort:
                service._step_record_safely(record)
            self._release_settled(cohort)
            return

        entries: list[_PendingWork] = []
        for record in cohort:
            slot = service._begin_slot(record)
            if slot is None:
                continue
            run, state = slot
            try:
                grow_seconds = service._grow_for_run(record, run, state)
                # the transport window opens here: export, pickling, the
                # queue round-trip, worker-idle wait and result apply all
                # land in the ipc stage bucket
                export_started = time.perf_counter()
                memo_floors = (
                    self._pool.memo_floors(state.components)
                    if self.memo_deltas
                    else None
                )
                item = export_round_item(
                    state,
                    run.error_bound,
                    grow_seconds,
                    record.executor.config,
                    kind=record.kind,
                    memo_floors=memo_floors,
                )
                if memo_floors is None:
                    self._c_full_dispatches.inc()
                else:
                    self._c_delta_dispatches.inc()
                self._count_shipment(
                    item.memos,
                    item.chain_memos,
                    sum(
                        len(plan.similarity_cache) + len(plan.chain_prefix_memo)
                        for plan in state.components
                    ),
                )
            except BaseException as exc:
                service._fail_record(record, exc)
                continue
            entry = _PendingWork(
                item=item,
                record=record,
                run=run,
                state=state,
                export_started=export_started,
            )
            parent_span = getattr(record, "span", None)
            if parent_span is not None:
                entry.span = parent_span.child(
                    "round", kind=record.kind, round_index=run.steps_taken + 1
                )
            self._dispatch_round_entry(service, entry)
            entries.append(entry)

        self._harvest(service, entries, self._dispatch_round_entry)

        for entry in entries:
            if entry.abandoned or entry.skipped:
                continue  # settled elsewhere (close()/cancel)
            if entry.needs_fallback:
                # replay budget spent: run the exported item in-process —
                # the exact function the workers run, on the live plans
                self._c_local_fallbacks.inc()
                try:
                    entry.result = execute_round_item(
                        entry.item,
                        entry.state.components,
                        entry.state.joint,
                        entry.record.executor,
                    )
                except BaseException as exc:
                    entry.error = exc
            if entry.error is not None:
                if entry.span is not None:
                    entry.span.end()
                service._fail_record(entry.record, entry.error)
                continue
            if entry.result is None:
                continue
            try:
                outcome = apply_round_result(entry.state, entry.result)
                self._pool.commit_memo_versions(
                    entry.state.components, entry.result.worker_pid
                )
                # close the stage_ms attribution gap: everything between
                # growth and the applied result that the worker did not
                # spend computing is transport — export + pickling + the
                # queue round-trip + (for recovered rounds) retry delays
                worker_busy = sum(entry.result.stage_seconds.values())
                service._attribute_stage(
                    entry.state,
                    STAGE_IPC,
                    max(
                        0.0,
                        time.perf_counter()
                        - entry.export_started
                        - worker_busy,
                    ),
                )
                if entry.span is not None:
                    worker_span = entry.span.child(
                        "worker_round",
                        worker_pid=entry.result.worker_pid,
                        attempts=entry.attempts,
                    )
                    worker_span.duration_s = worker_busy
                    entry.span.end()
                service._finish_slot(entry.record, entry.run, entry.state, outcome)
            except BaseException as exc:
                service._fail_record(entry.record, exc)
        self._release_settled(cohort)

    def _release_settled(self, cohort) -> None:
        # a record with no live or queued run is done (for now): unpin its
        # joint segment so a long-lived service stays bounded.  Swept over
        # the WHOLE cohort — records that finished via the stale-pool
        # fallback, failed at dispatch, or were cancelled must release
        # too, not just the parallel-completion path.  refine() simply
        # republishes later.
        for record in cohort:
            if (
                record.state is not None
                and record.active_run is None
                and not record.queued_runs
            ):
                self._pool.release_state(record.state)

    # -- supervision ----------------------------------------------------
    def _dispatch_round_entry(self, service, entry: _PendingWork) -> None:
        record = entry.record
        if record.status.terminal or record.cancel_requested:
            entry.skipped = True  # a cancel landed before (re-)dispatch
            return
        fault = None
        plan = self.fault_plan
        try:
            if plan is not None:
                context = {
                    "sequence": record.sequence,
                    "round": entry.run.steps_taken + 1,
                    "kind": record.kind,
                    "attempt": entry.attempts,
                }
                plan.fire("dispatch_round", **context)
                fault = plan.payload_for(plan.fire("worker_round", **context))
            entry.handle = self._pool.dispatch_round(
                entry.item, entry.state.components, entry.state, fault=fault
            )
            entry.pids = self._pool.worker_pids()
        except BaseException as exc:
            entry.error = exc

    def _dispatch_prewarm_entry(self, service, entry: _PendingWork) -> None:
        fault = None
        plan = self.fault_plan
        try:
            if plan is not None:
                context = {
                    "nodes": len(entry.item.node_ids),
                    "attempt": entry.attempts,
                }
                fault = plan.payload_for(plan.fire("worker_prewarm", **context))
            entry.handle = self._pool.dispatch_prewarm(
                entry.item, entry.job.plan, fault=fault
            )
            entry.pids = self._pool.worker_pids()
        except BaseException as exc:
            entry.error = exc

    @staticmethod
    def _undecided(entry: _PendingWork) -> bool:
        """True while the entry still needs a worker result gathered."""
        return (
            entry.handle is not None
            and entry.result is None
            and entry.error is None
            and not entry.needs_fallback
            and not entry.abandoned
            and not entry.skipped
        )

    def _harvest(self, service, entries, redispatch) -> None:
        """Gather every entry's result, recovering from worker deaths."""
        for entry in entries:
            while self._undecided(entry):
                status, value = self._await_one(service, entry)
                if status == "ok":
                    entry.result = value
                elif status == "error":
                    entry.error = value
                elif status == "shutdown":
                    entry.abandoned = True
                else:  # "lost": a worker died under this batch
                    self._recover(service, entries, redispatch)

    def _await_one(self, service, entry: _PendingWork):
        """Poll one handle: ``(status, value)``.

        A plain ``handle.get()`` never returns once ``close()`` has
        terminated the pool mid-round — or once the worker holding the
        job died — stranding the scheduler thread forever.  Polling lets
        the thread notice the shutdown flag (``"shutdown"``) and compare
        the pool's pid set against the dispatch-time set (``"lost"``):
        the pool's maintenance thread replaces dead workers, so a changed
        set, not an exitcode, is the reliable death signal.
        """
        while True:
            try:
                return "ok", entry.handle.get(timeout=0.1)
            except multiprocessing.TimeoutError:
                if service._shutdown or self._pool._closed:
                    return "shutdown", None
                if self._pool.worker_pids() != entry.pids:
                    return "lost", None
            except BaseException as exc:
                return "error", exc

    def _recover(self, service, entries, redispatch) -> None:
        """A worker died: salvage, back off, respawn, re-dispatch.

        Results that finished before the death are harvested off the
        dying pool first; the rest are re-dispatched to a fresh pool
        attached to the same published snapshot/plan segments.  Replay is
        byte-identical because every exported item carries its
        already-grown sample — the RNG ran in the scheduler thread.
        Entries out of retry budget are marked for in-process fallback.
        """
        plan = self.fault_plan
        if plan is not None:
            plan.fire("recover", respawns=self._pool.respawns + 1)
        for entry in entries:
            if self._undecided(entry) and entry.handle.ready():
                try:
                    entry.result = entry.handle.get(timeout=0)
                except BaseException as exc:
                    entry.error = exc
        unfinished = [e for e in entries if self._undecided(e)]
        if service._shutdown or self._pool._closed:
            for entry in unfinished:
                entry.abandoned = True
            return
        delay = self.retry.delay_for(
            min((e.attempts for e in unfinished), default=1)
        )
        if delay > 0:
            time.sleep(delay)
        self._pool.respawn()
        for entry in unfinished:
            entry.handle = None
            if entry.attempts >= self.retry.max_attempts:
                entry.needs_fallback = True
                continue
            entry.attempts += 1
            self._c_retries.inc()
            if entry.record is not None:
                # the audit line reports how many redispatches the query
                # absorbed; single-writer (only the scheduler thread runs
                # recovery), so a plain int is safe here
                entry.record.retries += 1
            if entry.span is not None:
                entry.span.event(
                    "retry",
                    attempt=entry.attempts,
                    respawns=self._pool.respawns,
                )
            redispatch(service, entry)

    def run_prewarm(self, service, jobs) -> list[float]:
        if not self._pool.fresh():
            # stale workers would compute verdicts against the old graph
            # and poison the live plans' memos — same correctness rule as
            # run_cohort's local fallback
            return super().run_prewarm(service, jobs)
        entries: list[_PendingWork] = []
        for job in jobs:
            if self.memo_deltas:
                # ensure the plan has a ticket (and so a version token)
                # before reading floors, mirroring dispatch order
                self._pool.ticket_for(job.plan)
                floors = self._pool.memo_floors([job.plan])[0]
                item = PrewarmWorkItem(
                    config=job.executor.config,
                    memo=memo_delta(job.plan.similarity_cache, floors[0]),
                    chain_memo=memo_delta(job.plan.chain_prefix_memo, floors[1]),
                    node_ids=tuple(int(node) for node in job.nodes),
                    full_memos=False,
                )
                self._c_delta_dispatches.inc()
            else:
                item = PrewarmWorkItem(
                    config=job.executor.config,
                    memo=dict(job.plan.similarity_cache),
                    chain_memo=dict(job.plan.chain_prefix_memo),
                    node_ids=tuple(int(node) for node in job.nodes),
                )
                self._c_full_dispatches.inc()
            self._count_shipment(
                (item.memo,),
                (item.chain_memo,),
                len(job.plan.similarity_cache) + len(job.plan.chain_prefix_memo),
            )
            entry = _PendingWork(item=item, job=job)
            self._dispatch_prewarm_entry(service, entry)
            entries.append(entry)

        self._harvest(service, entries, self._dispatch_prewarm_entry)

        seconds: list[float] = []
        for entry in entries:
            if entry.needs_fallback:
                # a prewarm is an optimization: after the retry budget,
                # run the batch in-process rather than give up on it
                self._c_local_fallbacks.inc()
                try:
                    entry.result = execute_prewarm_item(
                        entry.item, entry.job.plan, entry.job.executor
                    )
                except BaseException:
                    entry.result = None
            if entry.result is None:
                # abandoned (closing) or failed: the memo stays cold and
                # each query's own validation pass fills it — prewarm
                # failures degrade throughput, never results
                seconds.append(0.0)
                continue
            apply_prewarm_result(entry.job.plan, entry.result)
            self._pool.commit_memo_versions(
                [entry.job.plan], entry.result.worker_pid
            )
            seconds.append(entry.result.seconds)
        return seconds

    def close(self) -> None:
        self._pool.close()
