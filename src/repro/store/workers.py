"""Multi-process execution for the serving layer.

:class:`WorkerPool` owns N long-lived worker processes plus one
:class:`~repro.store.shared.SharedSnapshotStore`.  The CSR snapshot is
published through shared memory before the pool starts (workers install
it instead of compiling their own), and every :class:`QueryPlan` a round
references is published once as artefact segments — workers attach by
name and rebuild a plan replica around the shared arrays, so neither the
graph arrays nor any plan artefact is pickled per round.  Only the small
:class:`~repro.core.executor.RoundWorkItem` payloads travel the queue.

Determinism: sampling (the only RNG) runs in the parent before export;
validation, estimation and the BLB guarantee are deterministic functions
of the item plus the shared artefacts, so a worker's
:class:`~repro.core.executor.RoundWorkResult` is byte-identical to what
the cooperative scheduler would have computed in-process — the
equivalence tests and the parallel benchmark's gate assert exactly that.

With the ``fork`` start method (Linux) workers inherit the graph and
embedding copy-on-write at pool creation; with ``spawn`` they receive one
pickled copy at startup.  Either way, a graph mutated (structurally *or*
attribute-wise) after pool creation makes the workers stale:
:meth:`WorkerPool.fresh` reports this and the process backend falls back
to in-process execution for correctness.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.core.config import EngineConfig
from repro.core.executor import (
    PrewarmWorkItem,
    QueryExecutor,
    RoundWorkItem,
    apply_prewarm_result,
    apply_round_result,
    execute_prewarm_item,
    execute_round_item,
    export_round_item,
)
from repro.core.plan import PlanArtifacts, QueryPlan, extract_artifacts, plan_from_artifacts
from repro.core.planner import build_validator
from repro.core.service import ExecutionBackend
from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import ServiceError, StoreError
from repro.kg.csr import csr_from_arrays, csr_snapshot, install_snapshot
from repro.kg.graph import KnowledgeGraph
from repro.store.shared import SharedSnapshotStore

__all__ = ["WorkerPool", "ProcessBackend", "default_worker_count"]


def default_worker_count() -> int:
    """Worker processes/threads to use when the caller does not say."""
    return max(1, os.cpu_count() or 1)


def _pickle_spec(plan: QueryPlan) -> dict:
    """The small picklable facet of a plan (arrays travel via shm)."""
    artifacts = extract_artifacts(plan)
    return {
        "component": artifacts.component,
        "source": artifacts.source,
        "walk_iterations": artifacts.walk_iterations,
        "num_candidates": artifacts.num_candidates,
        "is_chain": artifacts.is_chain,
        "chain_truncated": artifacts.chain_truncated,
    }


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------
class _WorkerContext:
    """Per-process state: the graph, plan replicas, attached segments."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        config: EngineConfig,
    ) -> None:
        self.kg = kg
        self.space = space
        self.config = config
        self._executors: dict[str, QueryExecutor] = {}
        self._plans: dict[str, QueryPlan] = {}
        #: token -> (joint, attached segment); LRU-bounded, see resolve_joint
        self._joints: dict[str, tuple] = {}
        self._attached: list = []

    def executor_for(self, config: EngineConfig) -> QueryExecutor:
        """One executor per distinct config (per-query confidence overrides)."""
        key = repr(config)
        executor = self._executors.get(key)
        if executor is None:
            executor = QueryExecutor(self.kg, self.space, config, planner=None)
            self._executors[key] = executor
        return executor

    #: attached per-query joints kept per worker; tokens are never
    #: reused, so this is a plain bounded cache — old entries belong to
    #: finished (parent-side released) queries and can be dropped
    JOINT_CACHE_LIMIT = 64

    def resolve_joint(self, ticket: dict):
        """The (cached) shared joint distribution for one query state."""
        from repro.sampling.collector import AnswerDistribution

        token = ticket["token"]
        cached = self._joints.get(token)
        if cached is not None:
            self._joints[token] = self._joints.pop(token)  # LRU touch
            return cached[0]
        attached = SharedSnapshotStore.attach(ticket["manifest"])
        joint = AnswerDistribution(
            answers=attached.arrays["answers"],
            probabilities=attached.arrays["probabilities"],
        )
        self._joints[token] = (joint, attached)
        while len(self._joints) > self.JOINT_CACHE_LIMIT:
            oldest = next(iter(self._joints))  # dicts iterate oldest-first
            _old_joint, old_attached = self._joints.pop(oldest)
            old_attached.close()
        return joint

    def resolve_plan(self, ticket: dict) -> QueryPlan:
        """The replica for one plan ticket, attaching its segments once."""
        token = ticket["token"]
        plan = self._plans.get(token)
        if plan is not None:
            return plan
        attached = SharedSnapshotStore.attach(ticket["manifest"])
        self._attached.append(attached)
        spec = ticket["spec"]
        artifacts = PlanArtifacts(
            component=spec["component"],
            source=spec["source"],
            answers=attached.arrays["answers"],
            probabilities=attached.arrays["probabilities"],
            visiting=attached.arrays["visiting"],
            walk_iterations=spec["walk_iterations"],
            num_candidates=spec["num_candidates"],
            is_chain=spec["is_chain"],
            chain_routes={},  # routes are sampling-side; workers only validate
            chain_truncated=spec["chain_truncated"],
        )
        plan = plan_from_artifacts(
            artifacts, build_validator(self.kg, self.space, self.config)
        )
        self._plans[token] = plan
        return plan


#: the per-process context, set by the pool initializer
_CONTEXT: _WorkerContext | None = None


def _worker_init(
    kg: KnowledgeGraph,
    space: PredicateVectorSpace,
    config: EngineConfig,
    snapshot_manifest: dict | None,
) -> None:
    global _CONTEXT
    _CONTEXT = _WorkerContext(kg, space, config)
    if snapshot_manifest is not None:
        attached = SharedSnapshotStore.attach(snapshot_manifest)
        _CONTEXT._attached.append(attached)
        snapshot = csr_from_arrays(attached.metadata, attached.arrays)
        # spawn-started workers get the shared CSR instead of compiling
        # their own; fork-started workers inherited the parent's anyway
        install_snapshot(kg, snapshot)


def _require_context() -> _WorkerContext:
    if _CONTEXT is None:  # pragma: no cover - initializer always runs
        raise ServiceError("worker context missing: pool initializer did not run")
    return _CONTEXT


def _worker_round(payload: tuple[RoundWorkItem, tuple[dict, ...], dict]):
    """Pool target: execute one exported round against shared segments."""
    item, tickets, joint_ticket = payload
    context = _require_context()
    plans = [context.resolve_plan(ticket) for ticket in tickets]
    joint = context.resolve_joint(joint_ticket)
    executor = context.executor_for(item.config)
    return execute_round_item(item, plans, joint, executor)


def _worker_prewarm(payload: tuple[PrewarmWorkItem, dict]):
    """Pool target: one cross-query validation batch for a shared plan."""
    item, ticket = payload
    context = _require_context()
    plan = context.resolve_plan(ticket)
    executor = context.executor_for(item.config)
    return execute_prewarm_item(item, plan, executor)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------
class WorkerPool:
    """N worker processes sharing one published snapshot + plan store."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        config: EngineConfig,
        *,
        workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self.workers = workers if workers is not None else default_worker_count()
        if self.workers < 1:
            raise ServiceError("a worker pool needs at least one worker")
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            raise ServiceError(
                f"start method {start_method!r} unavailable (have {methods})"
            )
        self.start_method = start_method
        self._kg = kg
        self._graph_version = kg.version
        self._store = SharedSnapshotStore()
        #: id(plan) -> (plan, ticket).  The *strong* plan reference is
        #: load-bearing: it pins the id for the pool's lifetime, so a
        #: PlanCache-evicted plan can never be garbage-collected and have
        #: its address reused by a different plan that would then resolve
        #: to the old plan's shared segments.  Published segments live
        #: until :meth:`close` — the shm footprint tracks published plans
        #: exactly, like the tickets themselves.
        self._tickets: dict[int, tuple[QueryPlan, dict]] = {}
        #: id(state) -> (state, ticket) for per-query joint distributions,
        #: pinned for the same id-reuse reason as ``_tickets``
        self._joints: dict[int, tuple[object, dict]] = {}
        self._token_counter = 0
        self._closed = False

        # Publish the CSR snapshot before any worker exists: fork-started
        # workers inherit the compiled snapshot copy-on-write, spawn-started
        # ones install the shared segments instead of compiling their own.
        snapshot = csr_snapshot(kg)
        metadata, arrays = snapshot.export_arrays()
        snapshot_manifest = self._store.publish("csr-snapshot", metadata, arrays)
        context = multiprocessing.get_context(start_method)
        # a classic Pool forks/spawns all workers eagerly, *here*, in the
        # caller's thread — not lazily from the scheduler thread later
        self._pool = context.Pool(
            processes=self.workers,
            initializer=_worker_init,
            initargs=(kg, space, config, snapshot_manifest),
        )

    # ------------------------------------------------------------------
    def fresh(self) -> bool:
        """True while the workers' graph copy matches the live graph.

        Keys on ``version`` (structure *and* attributes): workers screen
        attribute filters themselves, so even attribute-only writes make
        their inherited copy stale.
        """
        return self._kg.version == self._graph_version

    def ticket_for(self, plan: QueryPlan) -> dict:
        """The (cached) shm ticket for ``plan``, publishing on first use."""
        cached = self._tickets.get(id(plan))
        if cached is not None:
            return cached[1]
        if self._closed:
            raise StoreError("the worker pool has been closed")
        token = f"plan-{self._token_counter}"
        self._token_counter += 1
        artifacts = extract_artifacts(plan)
        manifest = self._store.publish(token, {"token": token}, artifacts.arrays())
        ticket = {
            "token": token,
            "manifest": manifest,
            "spec": _pickle_spec(plan),
        }
        self._tickets[id(plan)] = (plan, ticket)
        return ticket

    def joint_ticket_for(self, state) -> dict:
        """The shm ticket for a query state's (immutable) joint distribution.

        Published once per state and pinned like plan tickets (same
        id-reuse hazard): every later round of the query ships a few
        bytes of manifest instead of the num_candidates-sized answer and
        probability arrays.
        """
        cached = self._joints.get(id(state))
        if cached is not None:
            return cached[1]
        if self._closed:
            raise StoreError("the worker pool has been closed")
        token = f"joint-{self._token_counter}"
        self._token_counter += 1
        manifest = self._store.publish(
            token,
            {"token": token},
            {
                "answers": state.joint.answers,
                "probabilities": state.joint.probabilities,
            },
        )
        ticket = {"token": token, "manifest": manifest}
        self._joints[id(state)] = (state, ticket)
        return ticket

    def release_state(self, state) -> None:
        """Drop a query state's pin + shared segment (run finished).

        Keeps a long-lived service bounded: without this, every query
        ever served would stay pinned (state, support arrays, shm block)
        until :meth:`close`.  A later ``refine()`` on the same state
        simply republishes under a fresh token.  Workers that attached
        the old segment hold their mapping open, so an in-flight round
        racing this release still reads valid pages.
        """
        entry = self._joints.pop(id(state), None)
        if entry is not None and not self._closed:
            self._store.unpublish(entry[1]["token"])

    def dispatch_round(self, item: RoundWorkItem, plans: list[QueryPlan], state):
        """Submit one round; returns the pool's async result handle."""
        tickets = tuple(self.ticket_for(plan) for plan in plans)
        if len(plans) == 1 and state.joint is plans[0].distribution:
            # the common single-component case: the joint IS the plan's
            # answer distribution, whose segment (answers/probabilities)
            # is already published — alias it instead of copying it into
            # a second per-query block
            joint_ticket = {
                "token": f"{tickets[0]['token']}:joint",
                "manifest": tickets[0]["manifest"],
            }
        else:
            joint_ticket = self.joint_ticket_for(state)
        return self._pool.apply_async(
            _worker_round, ((item, tickets, joint_ticket),)
        )

    def dispatch_prewarm(self, item: PrewarmWorkItem, plan: QueryPlan):
        """Submit one cross-query validation batch."""
        ticket = self.ticket_for(plan)
        return self._pool.apply_async(_worker_prewarm, ((item, ticket),))

    def close(self) -> None:
        """Terminate the workers and unlink every shared segment."""
        if self._closed:
            return
        self._closed = True
        self._pool.terminate()
        self._pool.join()
        self._store.close()
        self._tickets.clear()
        self._joints.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


class ProcessBackend(ExecutionBackend):
    """``backend="processes"``: whole rounds fan out to a WorkerPool.

    Every kind of round — guaranteed aggregates, GROUP-BY, MAX/MIN — and
    the cohort pre-warm batches execute in worker processes; growth (the
    only RNG) stays in the scheduler thread, so fixed-seed results are
    byte-identical to the cooperative backend.  The single in-process
    fallback left is a mutated graph under a live pool (stale workers
    must never serve old attribute values); :attr:`local_fallbacks`
    counts how many slots it claimed.  Merging is deterministic — see
    :func:`repro.core.executor.apply_round_result`.
    """

    name = "processes"

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        config: EngineConfig,
        *,
        workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self._pool = WorkerPool(
            kg, space, config, workers=workers, start_method=start_method
        )
        #: slots executed in-process because the pool went stale; stays 0
        #: for a clean (unmutated) graph — asserted by the backend tests
        self.local_fallbacks = 0

    @property
    def workers(self) -> int:
        """Number of worker processes."""
        return self._pool.workers

    @property
    def pool(self) -> WorkerPool:
        """The underlying worker pool (teardown tests)."""
        return self._pool

    # -- ExecutionBackend interface ------------------------------------
    def run_cohort(self, service, cohort) -> None:
        usable = self._pool.fresh()
        if not usable:
            # mutated graph under a live pool: stale workers would serve
            # old attribute values — run every slot in-process instead
            self.local_fallbacks += len(cohort)
            for record in cohort:
                service._step_record_safely(record)
            self._release_settled(cohort)
            return

        pending = []
        for record in cohort:
            slot = service._begin_slot(record)
            if slot is None:
                continue
            run, state = slot
            try:
                grow_seconds = service._grow_for_run(record, run, state)
                item = export_round_item(
                    state,
                    run.error_bound,
                    grow_seconds,
                    record.executor.config,
                    kind=record.kind,
                )
                handle = self._pool.dispatch_round(item, state.components, state)
            except BaseException as exc:
                service._fail_record(record, exc)
                continue
            pending.append((record, run, state, handle))

        for record, run, state, handle in pending:
            try:
                result = self._await(service, handle)
                if result is None:
                    continue  # service closing: record already cancelled
                outcome = apply_round_result(state, result)
                service._finish_slot(record, run, state, outcome)
            except BaseException as exc:
                service._fail_record(record, exc)
        self._release_settled(cohort)

    def _release_settled(self, cohort) -> None:
        # a record with no live or queued run is done (for now): unpin its
        # joint segment so a long-lived service stays bounded.  Swept over
        # the WHOLE cohort — records that finished via the stale-pool
        # fallback, failed at dispatch, or were cancelled must release
        # too, not just the parallel-completion path.  refine() simply
        # republishes later.
        for record in cohort:
            if (
                record.state is not None
                and record.active_run is None
                and not record.queued_runs
            ):
                self._pool.release_state(record.state)

    def _await(self, service, handle):
        """Gather one worker result without out-living ``service.close()``.

        A plain ``handle.get()`` never returns once ``close()`` has
        terminated the pool mid-round, stranding the scheduler thread (and
        everything it references) forever; polling lets the thread notice
        the shutdown flag and abandon the round — its record was already
        cancelled by ``close()``.
        """
        while True:
            try:
                return handle.get(timeout=0.1)
            except multiprocessing.TimeoutError:
                if service._shutdown or self._pool._closed:
                    return None

    def run_prewarm(self, service, jobs) -> list[float]:
        if not self._pool.fresh():
            # stale workers would compute verdicts against the old graph
            # and poison the live plans' memos — same correctness rule as
            # run_cohort's local fallback
            return super().run_prewarm(service, jobs)
        pending = []
        for job in jobs:
            item = PrewarmWorkItem(
                config=job.executor.config,
                memo=dict(job.plan.similarity_cache),
                chain_memo=dict(job.plan.chain_prefix_memo),
                node_ids=tuple(int(node) for node in job.nodes),
            )
            pending.append(self._pool.dispatch_prewarm(item, job.plan))
        seconds: list[float] = []
        for job, handle in zip(jobs, pending):
            result = self._await(service, handle)
            if result is None:
                seconds.append(0.0)
                continue
            apply_prewarm_result(job.plan, result)
            seconds.append(result.seconds)
        return seconds

    def close(self) -> None:
        self._pool.close()
