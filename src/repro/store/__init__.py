"""``repro.store`` — persistence and cross-process sharing of S1 artefacts.

The engine's expensive preparation — the CSR graph snapshot and each
component's :class:`~repro.core.plan.QueryPlan` artefacts — is amortised
in-process by the snapshot cache and the
:class:`~repro.core.plan.PlanCache`, but dies with the process.  This
package makes those artefacts durable and shareable:

* :mod:`repro.store.format` — a versioned zero-copy container: JSON
  header + raw 64-byte-aligned numpy segments, ``np.memmap``-loadable;
* :mod:`repro.store.snapshot` / :mod:`repro.store.plans` — save/load of
  CSR snapshots and plan artefacts, keyed and validated by
  ``(graph fingerprint, structure_version, embedding fingerprint,
  config fingerprint)``;
* :class:`SnapshotCatalog` — a directory of both, pluggable into
  :class:`~repro.core.planner.QueryPlanner` so plan-cache misses fall
  through to disk before running S1;
* :class:`SharedSnapshotStore` — the same segments published through
  ``multiprocessing.shared_memory`` so worker processes attach without
  copying or re-pickling the graph;
* :mod:`repro.store.workers` — the :class:`WorkerPool` and
  ``backend="processes"`` execution backend the serving layer fans
  whole S2/S3 rounds out to.
"""

from repro.store.catalog import SnapshotCatalog
from repro.store.format import pack_arrays, read_arrays, unpack_arrays, write_arrays
from repro.store.plans import (
    embedding_fingerprint,
    load_plan_artifacts,
    save_plan_artifacts,
)
from repro.store.shared import AttachedSegments, SharedSnapshotStore
from repro.store.snapshot import load_snapshot, save_snapshot
from repro.store.workers import ProcessBackend, WorkerPool, default_worker_count

__all__ = [
    "AttachedSegments",
    "ProcessBackend",
    "SharedSnapshotStore",
    "SnapshotCatalog",
    "WorkerPool",
    "default_worker_count",
    "embedding_fingerprint",
    "load_plan_artifacts",
    "load_snapshot",
    "pack_arrays",
    "read_arrays",
    "save_plan_artifacts",
    "save_snapshot",
    "unpack_arrays",
    "write_arrays",
]
