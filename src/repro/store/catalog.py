""":class:`SnapshotCatalog` — a directory of snapshots and plan artefacts.

Layout under one root::

    <root>/
      snapshots/<graph16>-v<structure_version>.snap
      plans/<graph16>-v<structure_version>/<plan16>.plan

where ``<graph16>`` is the first 16 hex chars of the graph's content
fingerprint and ``<plan16>`` hashes the full plan key (embedding
fingerprint + config token + component token).  The catalog is the
deployment face of the store: a warm process saves its snapshot and
plans once, and every later worker, CLI invocation or benchmark run
memory-maps them back instead of recompiling S1 — the cross-*process*
analogue of what the :class:`~repro.core.plan.PlanCache` already does
across threads.  Wire a catalog into a
:class:`~repro.core.planner.QueryPlanner` (``catalog=...``) and cache
misses fall through to disk before running S1, with fresh builds saved
back automatically.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.core.config import EngineConfig
from repro.core.plan import QueryPlan, plan_from_artifacts
from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import StoreError
from repro.kg.csr import CSRGraph
from repro.kg.graph import KnowledgeGraph
from repro.query.graph import PathQuery
from repro.semantics.validation import CorrectnessValidator
from repro.store.plans import (
    component_token,
    config_token,
    embedding_fingerprint,
    load_plan_artifacts,
    save_plan_artifacts,
)
from repro.store.snapshot import (
    cached_graph_fingerprint,
    load_snapshot,
    save_snapshot,
)

#: hex chars of each fingerprint kept in file names
_SHORT = 16


class SnapshotCatalog:
    """Directory-backed store of CSR snapshots and plan artefacts."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnapshotCatalog({str(self.root)!r})"

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _graph_key(self, kg: KnowledgeGraph) -> str:
        return (
            f"{cached_graph_fingerprint(kg)[:_SHORT]}-v{kg.structure_version}"
        )

    def snapshot_path(self, kg: KnowledgeGraph) -> Path:
        """Where ``kg``'s current structure's snapshot lives."""
        return self.root / "snapshots" / f"{self._graph_key(kg)}.snap"

    def plan_path(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        config: EngineConfig,
        component: PathQuery,
    ) -> Path:
        """Where one component's plan artefacts live."""
        digest = hashlib.sha256()
        for part in (
            embedding_fingerprint(space),
            config_token(config),
            component_token(component),
        ):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return (
            self.root
            / "plans"
            / self._graph_key(kg)
            / f"{digest.hexdigest()[:_SHORT]}.plan"
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def save_snapshot(self, kg: KnowledgeGraph) -> Path:
        """Persist ``kg``'s CSR snapshot; returns the file path."""
        return save_snapshot(kg, self.snapshot_path(kg))

    def load_snapshot(
        self, kg: KnowledgeGraph, *, mmap: bool = True
    ) -> CSRGraph:
        """Load + install ``kg``'s snapshot; :class:`StoreError` if absent."""
        return load_snapshot(self.snapshot_path(kg), kg, mmap=mmap)

    def try_load_snapshot(
        self, kg: KnowledgeGraph, *, mmap: bool = True
    ) -> CSRGraph | None:
        """Like :meth:`load_snapshot` but ``None`` when no file exists."""
        path = self.snapshot_path(kg)
        if not path.is_file():
            return None
        return load_snapshot(path, kg, mmap=mmap)

    def has_snapshot(self, kg: KnowledgeGraph) -> bool:
        """True when a snapshot of ``kg``'s current structure is stored."""
        return self.snapshot_path(kg).is_file()

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------
    def save_plan(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        config: EngineConfig,
        plan: QueryPlan,
    ) -> Path:
        """Persist one plan's artefacts; returns the file path."""
        path = self.plan_path(kg, space, config, plan.component)
        return save_plan_artifacts(path, kg, space, config, plan)

    def try_load_plan(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        config: EngineConfig,
        component: PathQuery,
        *,
        validator: CorrectnessValidator | None = None,
        mmap: bool = True,
    ) -> QueryPlan | None:
        """The stored plan for ``component``, or ``None`` on a miss.

        A present-but-mismatched file (stale version, different embedding)
        raises :class:`StoreError` rather than silently rebuilding — a
        catalog hit must never serve wrong artefacts, and the caller
        decides whether to delete and rebuild.
        """
        path = self.plan_path(kg, space, config, component)
        if not path.is_file():
            return None
        artifacts = load_plan_artifacts(path, kg, space, config, mmap=mmap)
        if component_token(artifacts.component) != component_token(component):
            raise StoreError(
                f"plan artefact {path} stores a different component "
                "(hash collision or manual file move)"
            )
        return plan_from_artifacts(artifacts, validator)

    def stored_plan_count(self, kg: KnowledgeGraph) -> int:
        """Number of plan files stored for ``kg``'s current structure."""
        directory = self.root / "plans" / self._graph_key(kg)
        if not directory.is_dir():
            return 0
        return sum(1 for _ in directory.glob("*.plan"))
