"""CSR snapshot persistence: save once, memory-map forever.

A snapshot file is the :mod:`repro.store.format` container holding the
five :class:`~repro.kg.csr.CSRGraph` arrays plus a validation key::

    (graph fingerprint, structure_version, num_nodes, num_edges)

``structure_version`` is the same counter the in-process snapshot cache
and the :class:`~repro.core.plan.PlanCache` key on; the content
fingerprint (:func:`repro.kg.io.graph_fingerprint`) additionally survives
serialisation, so a snapshot saved in one process validates against the
same graph loaded from JSON in another.  Loading with ``mmap=True`` (the
default) is O(header): no array bytes are touched until the engine walks
them, and :func:`load_snapshot` installs the result into the graph's
snapshot cache so ``csr_snapshot(kg)`` never calls ``build_csr`` again.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import StoreError
from repro.kg.csr import CSRGraph, csr_from_arrays, csr_snapshot, install_snapshot
from repro.kg.graph import KnowledgeGraph
from repro.kg.io import graph_fingerprint
from repro.store.format import read_arrays, write_arrays

#: metadata ``kind`` tag distinguishing snapshot files from plan files
SNAPSHOT_KIND = "csr-snapshot"

#: attribute memoising ``(structure_version, fingerprint)`` per graph —
#: fingerprinting walks every triple, so it is computed once per structure
_FINGERPRINT_ATTR = "_repro_graph_fingerprint"


def cached_graph_fingerprint(kg: KnowledgeGraph) -> str:
    """:func:`graph_fingerprint`, memoised per graph structure version."""
    cached = getattr(kg, _FINGERPRINT_ATTR, None)
    version = kg.structure_version
    if cached is not None and cached[0] == version:
        return cached[1]
    fingerprint = graph_fingerprint(kg)
    setattr(kg, _FINGERPRINT_ATTR, (version, fingerprint))
    return fingerprint


def snapshot_metadata(kg: KnowledgeGraph) -> dict:
    """The validation key a snapshot of ``kg``'s current structure carries."""
    return {
        "kind": SNAPSHOT_KIND,
        "graph_name": kg.name,
        "graph_fingerprint": cached_graph_fingerprint(kg),
        "structure_version": kg.structure_version,
        "num_nodes": kg.num_nodes,
        "num_edges": kg.num_edges,
    }


def save_snapshot(kg: KnowledgeGraph, path: str | Path) -> Path:
    """Write ``kg``'s (possibly freshly compiled) CSR snapshot to ``path``."""
    snapshot = csr_snapshot(kg)
    metadata, arrays = snapshot.export_arrays()
    metadata.update(snapshot_metadata(kg))
    write_arrays(path, metadata, arrays)
    return Path(path)


def _validate_snapshot_key(metadata: dict, kg: KnowledgeGraph, path) -> None:
    if metadata.get("kind") != SNAPSHOT_KIND:
        raise StoreError(f"{path} is not a CSR snapshot (kind={metadata.get('kind')!r})")
    stored_version = metadata.get("structure_version")
    if stored_version != kg.structure_version:
        raise StoreError(
            f"snapshot {path} was saved at structure_version {stored_version}, "
            f"but the graph is at {kg.structure_version}; rebuild the snapshot "
            "after structural mutation"
        )
    if (
        metadata.get("num_nodes") != kg.num_nodes
        or metadata.get("num_edges") != kg.num_edges
    ):
        raise StoreError(
            f"snapshot {path} describes {metadata.get('num_nodes')} nodes / "
            f"{metadata.get('num_edges')} edges, but the graph has "
            f"{kg.num_nodes} / {kg.num_edges}"
        )


def load_snapshot(
    path: str | Path,
    kg: KnowledgeGraph | None = None,
    *,
    mmap: bool = True,
    verify_fingerprint: bool = False,
) -> CSRGraph:
    """Load a snapshot file, optionally validating + installing it on ``kg``.

    Without ``kg`` the raw :class:`CSRGraph` is returned (inspection,
    tooling).  With ``kg`` the stored key is validated — ``kind``,
    ``structure_version`` and the node/edge counts must match, raising
    :class:`StoreError` otherwise — and the snapshot is installed into the
    graph's cache, so subsequent ``csr_snapshot(kg)`` calls skip
    ``build_csr`` entirely.  ``verify_fingerprint`` additionally checks
    the content hash (O(edges); catches same-sized but different graphs).
    """
    metadata, arrays = read_arrays(path, mmap=mmap)
    try:
        snapshot = csr_from_arrays(metadata, arrays)
    except KeyError as exc:
        raise StoreError(f"snapshot {path} metadata missing {exc}") from exc
    if kg is None:
        return snapshot
    _validate_snapshot_key(metadata, kg, path)
    if verify_fingerprint:
        expected = metadata.get("graph_fingerprint")
        actual = cached_graph_fingerprint(kg)
        if expected != actual:
            raise StoreError(
                f"snapshot {path} content fingerprint {expected!r} does not "
                f"match the graph ({actual!r}): same shape, different graph"
            )
    return install_snapshot(kg, snapshot)
