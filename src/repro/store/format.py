"""The zero-copy segment container behind every ``repro.store`` artefact.

One store file is a JSON header followed by raw, 64-byte-aligned numpy
array segments::

    offset 0   : magic  b"REPROSTR"            (8 bytes)
    offset 8   : header length                 (uint64 little-endian)
    offset 16  : header JSON (utf-8)           (``header length`` bytes)
    aligned 64 : segment 0 raw bytes (C order)
    aligned 64 : segment 1 raw bytes
    ...

The header carries the format version, caller metadata (snapshot keys,
plan fingerprints...) and one entry per segment: name, dtype string,
shape and byte offset.  Because segments are raw C-contiguous buffers at
known offsets, :func:`read_arrays` can hand back ``np.memmap`` views —
loading a multi-hundred-MB snapshot touches no array bytes until they are
used, and two processes mapping the same file share pages.  The very same
``(header, segments)`` layout is reused by
:class:`~repro.store.shared.SharedSnapshotStore` to pack arrays into one
``multiprocessing.shared_memory`` block.

Everything here raises :class:`~repro.errors.StoreError` on malformed
input so callers can distinguish store corruption from engine errors.
"""

from __future__ import annotations

import io
import itertools
import json
import os
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import StoreError

#: per-process serial making concurrent writers' temp names unique
_WRITE_SERIAL = itertools.count()

#: file magic; changing the layout bumps FORMAT_VERSION, never the magic
MAGIC = b"REPROSTR"
FORMAT_VERSION = 1

#: segment alignment (bytes); 64 covers every numpy dtype and cache line
ALIGNMENT = 64


def _aligned(offset: int) -> int:
    """``offset`` rounded up to the next :data:`ALIGNMENT` boundary."""
    remainder = offset % ALIGNMENT
    return offset if remainder == 0 else offset + (ALIGNMENT - remainder)


def _segment_entries(
    arrays: Mapping[str, np.ndarray], payload_base: int
) -> tuple[list[dict], int]:
    """Header entries + total size for ``arrays`` packed after ``payload_base``.

    Layout only reads dtype/shape/nbytes — identical for non-contiguous
    inputs — so no array is copied here; the single
    ``ascontiguousarray`` conversion happens at write time.
    """
    entries: list[dict] = []
    offset = payload_base
    for name, array in arrays.items():
        offset = _aligned(offset)
        entries.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
            }
        )
        offset += array.nbytes
    return entries, offset


def _build_header(
    metadata: Mapping[str, object], arrays: Mapping[str, np.ndarray]
) -> tuple[bytes, list[dict], int]:
    """``(header bytes, segment entries, total file size)`` for one layout.

    The header length depends on the segment offsets, which depend on the
    header length; the fixed point is found by recomputing until stable
    (two passes in practice, since only the digits of the offsets move).
    """
    payload_base = 16  # magic + length; grows once the header is known
    for _ in range(8):
        entries, total = _segment_entries(arrays, payload_base)
        document = {
            "format_version": FORMAT_VERSION,
            "metadata": dict(metadata),
            "segments": entries,
        }
        header = json.dumps(document, sort_keys=True).encode("utf-8")
        new_base = _aligned(16 + len(header))
        if new_base == payload_base:
            return header, entries, total
        payload_base = new_base
    raise StoreError("store header layout failed to stabilise")  # pragma: no cover


def _write_stream(stream, metadata, arrays) -> None:
    """Stream one container into a binary writer (no full-size copy).

    Segments go out as flat memoryviews over the source buffers —
    ``write`` accepts any bytes-like object (plain files and ``BytesIO``
    alike), so saving a multi-hundred-MB snapshot costs O(write buffer)
    transient memory, not 2x the file size.
    """
    header, entries, total = _build_header(metadata, arrays)
    stream.write(MAGIC)
    stream.write(len(header).to_bytes(8, "little"))
    stream.write(header)
    position = 16 + len(header)
    for entry, array in zip(entries, arrays.values()):
        padding = entry["offset"] - position
        if padding:
            stream.write(b"\x00" * padding)
        stream.write(memoryview(np.ascontiguousarray(array)).cast("B"))
        position = entry["offset"] + entry["nbytes"]
    # pad to the declared total, so files are always exactly `total`
    # bytes — with zero segments the header's trailing alignment is
    # otherwise never emitted
    trailing = total - position
    if trailing < 0:  # pragma: no cover - layout invariant
        raise StoreError("store layout size mismatch while packing")
    if trailing:
        stream.write(b"\x00" * trailing)


def pack_arrays(
    metadata: Mapping[str, object], arrays: Mapping[str, np.ndarray]
) -> bytes:
    """Serialise ``(metadata, arrays)`` into one store-format byte string."""
    buffer = io.BytesIO()
    _write_stream(buffer, metadata, arrays)
    return buffer.getvalue()


def pack_into(
    buffer, metadata: Mapping[str, object], arrays: Mapping[str, np.ndarray]
) -> int:
    """Pack a container directly into a writable buffer (shared memory).

    Returns the packed size.  Array bytes are copied once, straight into
    ``buffer`` — the publish path of the shared snapshot store.
    """
    header, entries, total = _build_header(metadata, arrays)
    if len(buffer) < total:
        raise StoreError(
            f"target buffer holds {len(buffer)} bytes, container needs {total}"
        )
    view = memoryview(buffer)
    view[:8] = MAGIC
    view[8:16] = len(header).to_bytes(8, "little")
    view[16 : 16 + len(header)] = header
    for entry, array in zip(entries, arrays.values()):
        flat = np.frombuffer(
            view[entry["offset"] : entry["offset"] + entry["nbytes"]],
            dtype=np.uint8,
        )
        flat[:] = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
    return total


def packed_size(
    metadata: Mapping[str, object], arrays: Mapping[str, np.ndarray]
) -> int:
    """Total container size for ``(metadata, arrays)`` without packing."""
    _header, _entries, total = _build_header(metadata, arrays)
    return total


def write_arrays(
    path: str | Path,
    metadata: Mapping[str, object],
    arrays: Mapping[str, np.ndarray],
) -> None:
    """Write ``(metadata, arrays)`` to ``path`` atomically (tmp + rename).

    The temporary name is unique per writer (pid + per-process counter):
    concurrent processes racing to persist the same catalog entry each
    complete a private file and the last rename wins — the entries are
    content-equal by construction, and no reader can ever observe a
    half-written file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(
        f"{path.name}.{os.getpid()}-{next(_WRITE_SERIAL)}.tmp"
    )
    try:
        with open(temporary, "wb") as stream:
            _write_stream(stream, metadata, arrays)
        temporary.replace(path)
    finally:
        temporary.unlink(missing_ok=True)


def parse_header(buffer: bytes | memoryview) -> tuple[dict, list[dict]]:
    """``(metadata, segment entries)`` parsed from a store-format buffer."""
    if len(buffer) < 16 or bytes(buffer[:8]) != MAGIC:
        raise StoreError("not a repro store file (bad magic)")
    header_length = int.from_bytes(bytes(buffer[8:16]), "little")
    if 16 + header_length > len(buffer):
        raise StoreError("truncated store header")
    try:
        document = json.loads(bytes(buffer[16 : 16 + header_length]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreError(f"corrupt store header: {exc}") from exc
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise StoreError(f"unsupported store format version: {version!r}")
    return document.get("metadata", {}), document.get("segments", [])


def unpack_arrays(
    buffer, *, writable: bool = False
) -> tuple[dict, dict[str, np.ndarray]]:
    """``(metadata, arrays)`` as zero-copy views over ``buffer``.

    ``buffer`` is anything exposing the buffer protocol over the full
    store bytes — an ``mmap``, a ``SharedMemory.buf`` memoryview, or plain
    ``bytes``.  The returned arrays alias the buffer (no copy); they are
    marked read-only unless ``writable``.
    """
    metadata, entries = parse_header(memoryview(buffer))
    arrays: dict[str, np.ndarray] = {}
    view = memoryview(buffer)
    for entry in entries:
        try:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(value) for value in entry["shape"])
            offset = int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"corrupt segment entry: {entry!r}") from exc
        if offset < 0 or nbytes < 0 or offset + nbytes > len(view):
            raise StoreError(
                f"segment {entry.get('name')!r} lies outside the store bounds"
            )
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if nbytes != expected:
            raise StoreError(
                f"segment {entry.get('name')!r} declares {nbytes} bytes but "
                f"dtype/shape require {expected}"
            )
        array = np.frombuffer(view[offset : offset + nbytes], dtype=dtype)
        array = array.reshape(shape)
        if not writable:
            array.setflags(write=False)
        arrays[entry["name"]] = array
    return metadata, arrays


def read_arrays(
    path: str | Path, *, mmap: bool = True
) -> tuple[dict, dict[str, np.ndarray]]:
    """Load a store file written by :func:`write_arrays`.

    With ``mmap`` (the default) the arrays are ``np.memmap``-backed
    zero-copy views: nothing is read eagerly and reloading a snapshot is
    O(header).  With ``mmap=False`` the file is read into memory once and
    the arrays are copies independent of the file.
    """
    path = Path(path)
    if not path.is_file():
        raise StoreError(f"no store file at {path}")
    if mmap:
        try:
            mapped = np.memmap(path, dtype=np.uint8, mode="r")
        except (ValueError, OSError) as exc:
            # e.g. a zero-byte file left by a crash mid-save: per the
            # module contract, malformed input is always a StoreError
            raise StoreError(f"unreadable store file {path}: {exc}") from exc
        return unpack_arrays(mapped)
    data = path.read_bytes()
    metadata, views = unpack_arrays(data)
    return metadata, {name: array.copy() for name, array in views.items()}
