"""Plan-artifact persistence: S1 results as store files.

A plan file holds one component's :class:`~repro.core.plan.PlanArtifacts`
— the answer distribution, the dense visiting array and the chain route
table — under the same key discipline as the in-process
:class:`~repro.core.plan.PlanCache`::

    (graph structure, embedding identity, config fingerprint, component)

with each facet made serialisable: the graph by ``(fingerprint,
structure_version)``, the embedding by a content hash of its vectors
(:func:`embedding_fingerprint` — the durable analogue of the cache's
object-identity key), the config by ``repr(plan_fingerprint(config))``
and the component by a canonical token.  ``load_plan_artifacts``
validates every facet and raises :class:`StoreError` naming the first
mismatch, so a stale artefact can never silently serve a different
graph, embedding or configuration.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.core.config import EngineConfig
from repro.core.plan import (
    PlanArtifacts,
    QueryPlan,
    extract_artifacts,
    plan_fingerprint,
)
from repro.embedding.base import PredicateEmbedding
from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import StoreError
from repro.kg.graph import KnowledgeGraph
from repro.query.graph import PathQuery
from repro.store.format import read_arrays, write_arrays
from repro.store.snapshot import cached_graph_fingerprint

#: metadata ``kind`` tag distinguishing plan files from snapshot files
PLAN_KIND = "plan-artifacts"

#: attribute memoising the content hash per embedding object
_EMBEDDING_FINGERPRINT_ATTR = "_repro_embedding_fingerprint"


def embedding_fingerprint(
    embedding: PredicateEmbedding | PredicateVectorSpace,
) -> str:
    """Content hash of an embedding: sorted predicate names + vector bytes.

    The in-process plan cache keys on embedding *object identity*; on disk
    the durable equivalent is the embedding's content — two processes
    loading the same trained model produce the same fingerprint and thus
    share plan artefacts.  Memoised on the embedding object (vectors are
    immutable once trained).
    """
    if isinstance(embedding, PredicateVectorSpace):
        embedding = embedding.embedding
    cached = getattr(embedding, _EMBEDDING_FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(b"repro-embedding-v1\x00")
    for name in sorted(embedding.predicate_names):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        vector = np.ascontiguousarray(embedding.predicate_vector(name), dtype=np.float64)
        digest.update(vector.tobytes())
        digest.update(b"\x01")
    fingerprint = digest.hexdigest()
    try:
        setattr(embedding, _EMBEDDING_FINGERPRINT_ATTR, fingerprint)
    except AttributeError:  # pragma: no cover - slotted embedding classes
        pass
    return fingerprint


def component_token(component: PathQuery) -> str:
    """A canonical, hash-stable string identifying one query component.

    Type sets are sorted so the token is independent of ``frozenset``
    iteration order (which varies across interpreter runs).
    """
    parts = [component.specific_name, ",".join(sorted(component.specific_types))]
    for predicate, types in component.hops:
        parts.append(f"{predicate}->{','.join(sorted(types))}")
    return "|".join(parts)


def config_token(config: EngineConfig) -> str:
    """The plan-relevant configuration facets as a stable string."""
    return repr(plan_fingerprint(config))


def _routes_to_json(routes: dict) -> list:
    return [
        [int(answer), [[list(path), float(probability)] for path, probability in entries]]
        for answer, entries in routes.items()
    ]


def _routes_from_json(payload: list) -> dict:
    return {
        int(answer): tuple(
            (tuple(int(node) for node in path), float(probability))
            for path, probability in entries
        )
        for answer, entries in payload
    }


def plan_metadata(
    kg: KnowledgeGraph,
    space: PredicateVectorSpace,
    config: EngineConfig,
    artifacts: PlanArtifacts,
) -> dict:
    """The full validation key + scalar payload of one plan file."""
    return {
        "kind": PLAN_KIND,
        "graph_fingerprint": cached_graph_fingerprint(kg),
        "structure_version": kg.structure_version,
        "embedding_fingerprint": embedding_fingerprint(space),
        "config_token": config_token(config),
        "component_token": component_token(artifacts.component),
        "component": {
            "specific_name": artifacts.component.specific_name,
            "specific_types": sorted(artifacts.component.specific_types),
            "hops": [
                [predicate, sorted(types)] for predicate, types in artifacts.component.hops
            ],
        },
        "source": int(artifacts.source),
        "walk_iterations": int(artifacts.walk_iterations),
        "num_candidates": int(artifacts.num_candidates),
        "is_chain": bool(artifacts.is_chain),
        "chain_routes": _routes_to_json(artifacts.chain_routes),
        "chain_truncated": bool(artifacts.chain_truncated),
    }


def save_plan_artifacts(
    path: str | Path,
    kg: KnowledgeGraph,
    space: PredicateVectorSpace,
    config: EngineConfig,
    plan: QueryPlan,
) -> Path:
    """Persist one plan's artefacts (arrays + key) to ``path``."""
    artifacts = extract_artifacts(plan)
    write_arrays(path, plan_metadata(kg, space, config, artifacts), artifacts.arrays())
    return Path(path)


def _component_from_metadata(metadata: dict) -> PathQuery:
    payload = metadata["component"]
    return PathQuery(
        specific_name=payload["specific_name"],
        specific_types=frozenset(payload["specific_types"]),
        hops=tuple(
            (predicate, frozenset(types)) for predicate, types in payload["hops"]
        ),
    )


def load_plan_artifacts(
    path: str | Path,
    kg: KnowledgeGraph,
    space: PredicateVectorSpace,
    config: EngineConfig,
    *,
    mmap: bool = True,
) -> PlanArtifacts:
    """Load + validate one plan file against ``(kg, space, config)``.

    Every key facet is checked; the first mismatch raises
    :class:`StoreError` with a message naming the facet, so operators can
    tell a stale-graph artefact from a different-embedding one.
    """
    metadata, arrays = read_arrays(path, mmap=mmap)
    if metadata.get("kind") != PLAN_KIND:
        raise StoreError(f"{path} is not a plan-artifact file")
    checks = (
        ("structure_version", metadata.get("structure_version"), kg.structure_version),
        (
            "graph_fingerprint",
            metadata.get("graph_fingerprint"),
            cached_graph_fingerprint(kg),
        ),
        (
            "embedding_fingerprint",
            metadata.get("embedding_fingerprint"),
            embedding_fingerprint(space),
        ),
        ("config_token", metadata.get("config_token"), config_token(config)),
    )
    for facet, stored, current in checks:
        if stored != current:
            raise StoreError(
                f"plan artefact {path} does not match the live engine: "
                f"{facet} was {stored!r} at save time but is {current!r} now"
            )
    try:
        return PlanArtifacts(
            component=_component_from_metadata(metadata),
            source=int(metadata["source"]),
            answers=arrays["answers"],
            probabilities=arrays["probabilities"],
            visiting=arrays["visiting"],
            walk_iterations=int(metadata["walk_iterations"]),
            num_candidates=int(metadata["num_candidates"]),
            is_chain=bool(metadata["is_chain"]),
            chain_routes=_routes_from_json(metadata.get("chain_routes", [])),
            chain_truncated=bool(metadata.get("chain_truncated", False)),
        )
    except KeyError as exc:
        raise StoreError(f"plan artefact {path} is missing {exc}") from exc
