"""Cross-process snapshot publication over ``multiprocessing.shared_memory``.

:class:`SharedSnapshotStore` packs ``(metadata, arrays)`` bundles with the
exact on-disk segment layout (:mod:`repro.store.format`) into named
POSIX shared-memory blocks.  A worker process attaches by *name* — a few
dozen bytes of manifest travel over the work queue — and unpacks
zero-copy array views over the shared pages: the graph snapshot and every
plan's visiting/distribution arrays exist once in physical memory no
matter how many workers execute rounds against them, and nothing is
pickled per round.

Ownership is explicit: the publishing process is the only one that
unlinks; attachers merely close their mapping and never take over unlink
responsibility (``track=False`` on CPython >= 3.13; on older versions the
attach-side re-registration is a harmless set no-op in the shared
resource-tracker process — see :func:`_open_untracked`).
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from repro.errors import StoreError
from repro.store.format import pack_into, packed_size, unpack_arrays

#: manifest schema version, checked on attach
MANIFEST_VERSION = 1


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without taking over unlink responsibility.

    On Python >= 3.13 the ``track=False`` opt-out says exactly that.  On
    older versions attaching re-registers the name with the resource
    tracker — harmless, because publisher and workers share one tracker
    process and its cache is a set: the duplicate registration is a
    no-op, and the publisher's ``unlink`` deregisters the single entry.
    (Explicitly *unregistering* here would strip the publisher's own
    registration from the shared tracker — do not.)
    """
    try:  # Python >= 3.13 has first-class opt-out
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class AttachedSegments:
    """One attached shared block: metadata + zero-copy array views.

    Keep this object alive as long as the arrays are in use; ``close()``
    drops the local mapping (never the shared block itself).
    """

    def __init__(self, manifest: Mapping) -> None:
        if manifest.get("manifest_version") != MANIFEST_VERSION:
            raise StoreError(
                f"unsupported shared-store manifest: {manifest!r}"
            )
        try:
            self._block = _open_untracked(manifest["shm_name"])
        except FileNotFoundError as exc:
            raise StoreError(
                f"shared segment {manifest.get('shm_name')!r} is gone "
                "(publisher closed its store?)"
            ) from exc
        self.key = manifest.get("key")
        self.metadata, self.arrays = unpack_arrays(self._block.buf)

    def close(self) -> None:
        """Release the local mapping (arrays must no longer be used)."""
        self.metadata, self.arrays = {}, {}
        try:
            self._block.close()
        except BufferError:  # pragma: no cover - caller kept array refs
            pass

    def __enter__(self) -> "AttachedSegments":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


class SharedSnapshotStore:
    """Publisher side: owns the shared blocks and their lifetimes."""

    def __init__(self) -> None:
        self._blocks: dict[str, shared_memory.SharedMemory] = {}
        self._manifests: dict[str, dict] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def publish(
        self,
        key: str,
        metadata: Mapping[str, object],
        arrays: Mapping[str, np.ndarray],
    ) -> dict:
        """Pack ``(metadata, arrays)`` into a shared block under ``key``.

        Republishing an existing key returns the existing manifest (the
        payloads the store carries — snapshots, plan artefacts — are
        immutable per key by construction).
        """
        if self._closed:
            raise StoreError("the shared snapshot store has been closed")
        existing = self._manifests.get(key)
        if existing is not None:
            return existing
        total = packed_size(metadata, arrays)
        block = shared_memory.SharedMemory(create=True, size=max(1, total))
        # pack straight into the shared pages: one copy, no staging buffer
        pack_into(block.buf, metadata, arrays)
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "key": key,
            "shm_name": block.name,
            "nbytes": total,
        }
        self._blocks[key] = block
        self._manifests[key] = manifest
        return manifest

    def manifest(self, key: str) -> dict | None:
        """The manifest published under ``key``, if any."""
        return self._manifests.get(key)

    @property
    def keys(self) -> tuple[str, ...]:
        """All currently published keys."""
        return tuple(self._manifests)

    @staticmethod
    def attach(manifest: Mapping) -> AttachedSegments:
        """Open a published block by manifest (any process)."""
        return AttachedSegments(manifest)

    # ------------------------------------------------------------------
    def unpublish(self, key: str) -> None:
        """Drop + unlink one published block."""
        block = self._blocks.pop(key, None)
        self._manifests.pop(key, None)
        if block is not None:
            block.close()
            block.unlink()

    def close(self) -> None:
        """Unlink every published block; attachers' mappings go stale."""
        self._closed = True
        for key in list(self._blocks):
            self.unpublish(key)

    def __enter__(self) -> "SharedSnapshotStore":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
