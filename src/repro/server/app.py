"""``repro.server`` — the HTTP/SSE front-end over :class:`AggregateQueryService`.

This is the step from "library" to "network service": one long-lived
:class:`~repro.core.service.AggregateQueryService` wrapped in a
dependency-free HTTP/1.1 server (stdlib ``asyncio`` only), so the
engine's *anytime* contract — a per-round estimate + CI that tightens
until the Theorem-2 guarantee holds — becomes a streaming payload any
HTTP client can consume.

Endpoints
---------

==========================================  =====================================
``POST /v1/queries``                        submit one AQL query -> ``202`` + id
``POST /v1/queries:batch``                  submit many; per-entry outcomes
``GET /v1/queries/{id}``                    status + latest anytime estimate
``GET /v1/queries/{id}/events``             SSE: one ``round`` event per
                                            completed round, then a terminal
                                            ``result`` / ``error`` /
                                            ``cancelled`` event
``POST /v1/queries/{id}/refine``            queue another run at a new bound
``DELETE /v1/queries/{id}``                 cancel
``GET /healthz``                            ``service.health()`` + server counters
``GET /metrics``                            Prometheus text exposition of the
                                            service's observability registry
==========================================  =====================================

SSE streams are *push*, not poll: the handler subscribes to the query's
round-completion hook (:meth:`QueryHandle.subscribe`), replays the rounds
already completed from one ``progress()`` snapshot, then forwards each
new round the moment its slot finishes — entry-for-entry identical to the
handle's trace.  The error taxonomy maps onto status codes
(:func:`status_for`; the table lives in :mod:`repro.errors`), per-client
token buckets shed chatty clients with 429 + ``Retry-After`` before the
service queue saturates, and graceful shutdown drains live SSE streams —
waiting for queries to settle, cancelling stragglers so their streams end
with a terminal event — *before* the service closes.

The request handlers run on one event-loop thread and never block on
query completion: submits/cancels/refines are lock-brief service calls,
results are read only from settled handles, and streams wait on an
``asyncio.Queue`` fed by the scheduler's listener callbacks.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
import time

from repro.core.result import ApproximateResult, GroupedResult, RoundTrace
from repro.core.service import AggregateQueryService, QueryHandle, QueryStatus
from repro.errors import (
    ConvergenceError,
    DatasetError,
    DeadlineExceededError,
    EmbeddingError,
    EstimationError,
    GraphError,
    QueryCancelledError,
    QueryError,
    ReproError,
    ResultTimeoutError,
    SamplingError,
    ServiceError,
    ServiceOverloadedError,
    StoreError,
)
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.server.http import (
    HttpError,
    HttpRequest,
    SseStream,
    read_request,
    send_json,
    send_text,
)
from repro.server.quota import ClientQuota, QuotaRegistry

__all__ = [
    "ReproHTTPServer",
    "ServerThread",
    "encode_result",
    "encode_trace",
    "error_payload",
    "serve_in_thread",
    "status_for",
]


# ---------------------------------------------------------------------------
# JSON encodings (shared with the CLI, the bench and the tests — equivalence
# gates compare these bytes)
# ---------------------------------------------------------------------------
def encode_trace(trace: RoundTrace, *, timings: bool = True) -> dict:
    """One anytime round as a JSON-clean dict (extreme MoE sentinel kept)."""
    payload = {
        "round": trace.round_index,
        "total_draws": trace.total_draws,
        "correct_draws": trace.correct_draws,
        "estimate": trace.estimate,
        "moe": trace.moe,
        "satisfied": trace.satisfied,
        "guaranteed": trace.guaranteed,
    }
    if timings:
        payload["seconds"] = trace.seconds
    return payload


def encode_result(
    result: ApproximateResult | GroupedResult, *, timings: bool = True
) -> dict:
    """A final result as a JSON-clean dict.

    ``timings=False`` drops every wall-clock field (``stage_ms``, round
    ``seconds``), leaving only value-like content — that is the payload
    equivalence gates compare byte-for-byte against direct in-process
    execution, where timings legitimately differ.
    """
    if isinstance(result, GroupedResult):
        payload = {
            "type": "grouped",
            "function": result.function.value,
            "converged": result.converged,
            "total_draws": result.total_draws,
            "num_groups": result.num_groups,
            "groups": [
                {
                    "key": key,
                    "label": result.labels.get(key, str(key)),
                    "result": encode_result(result.groups[key], timings=timings),
                }
                for key in sorted(result.groups)
            ],
            "rounds": [encode_trace(t, timings=timings) for t in result.rounds],
        }
    else:
        payload = {
            "type": "approximate",
            "function": result.function.value,
            "estimate": result.value,
            "moe": result.moe,
            "lower": result.interval.lower,
            "upper": result.interval.upper,
            "confidence_level": result.interval.confidence_level,
            "converged": result.converged,
            "total_draws": result.total_draws,
            "correct_draws": result.correct_draws,
            "distinct_answers": result.distinct_answers,
            "num_candidates": result.num_candidates,
            "walk_iterations": result.walk_iterations,
            "rounds": [encode_trace(t, timings=timings) for t in result.rounds],
        }
    if timings:
        payload["stage_ms"] = dict(result.stage_ms)
    return payload


# ---------------------------------------------------------------------------
# Error taxonomy -> HTTP status (documented in repro.errors)
# ---------------------------------------------------------------------------
#: isinstance-ordered mapping: subclasses before their bases
_ERROR_STATUS: tuple[tuple[type, int], ...] = (
    (ServiceOverloadedError, 429),
    (DeadlineExceededError, 504),
    (QueryCancelledError, 409),
    (ResultTimeoutError, 503),
    (QueryError, 400),  # includes ParseError / MappingNodeNotFoundError
    (EmbeddingError, 400),
    (GraphError, 400),
    (DatasetError, 400),
    (SamplingError, 422),
    (EstimationError, 422),
    (ConvergenceError, 422),
    (StoreError, 503),
    (ServiceError, 503),
    (ReproError, 500),
)


def _unwrap(error: BaseException) -> BaseException:
    """Prefer the chained original over a bare ServiceError wrapper.

    ``QueryHandle.result()`` wraps scheduler-side failures in a fresh
    :class:`ServiceError` with the original as ``__cause__``; the HTTP
    mapping should name (and status-map) the original failure.
    """
    if type(error) is ServiceError and isinstance(error.__cause__, ReproError):
        return error.__cause__
    return error


def status_for(error: BaseException) -> int:
    """The HTTP status this library error maps to (500 if unknown)."""
    error = _unwrap(error)
    for error_type, status in _ERROR_STATUS:
        if isinstance(error, error_type):
            return status
    return 500


def error_payload(error: BaseException) -> dict:
    """The JSON body for a failed query / rejected request.

    A :class:`DeadlineExceededError` keeps the anytime contract over the
    wire: its preserved partial trace rides along as ``trace``.
    """
    error = _unwrap(error)
    payload = {
        "error": type(error).__name__,
        "message": str(error),
        "status": status_for(error),
    }
    if isinstance(error, DeadlineExceededError):
        payload["trace"] = [encode_trace(trace) for trace in error.trace]
    return payload


def _http_error_from(error: ReproError) -> HttpError:
    """Lift a library error into the HTTP response it maps to."""
    payload = error_payload(error)
    headers = {}
    if payload["status"] == 429:
        # admission-control sheds are retryable after backoff; advertise it
        headers["Retry-After"] = "1"
    status = payload.pop("status")
    message = payload.pop("message")
    return HttpError(status, message, headers=headers, payload=payload)


# ---------------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------------
_QUERY_PATH = re.compile(r"/v1/queries/([A-Za-z0-9_\-]+)(/events|/refine)?")

#: submit fields forwarded to service.submit (name -> validator)
_NUMBER = (int, float)


class _ServedQuery:
    """One tracked submission: the public id and its service handle."""

    __slots__ = ("id", "handle")

    def __init__(self, query_id: str, handle: QueryHandle) -> None:
        self.id = query_id
        self.handle = handle


class ReproHTTPServer:
    """One service, one listening socket, any number of streaming clients.

    Construct with an (already running) service, ``await start()`` inside
    an event loop — or use :func:`serve_in_thread` /
    :class:`ServerThread` for a synchronous facade — and point any HTTP
    client at :attr:`address`.  ``quota`` enables per-client token-bucket
    shedding; ``owns_service=True`` makes :meth:`shutdown` close the
    service after the drain (the ordering the anytime contract needs:
    streams settle first, then the scheduler stops).
    """

    def __init__(
        self,
        service: AggregateQueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        quota: ClientQuota | None = None,
        drain_timeout: float = 5.0,
        heartbeat_seconds: float = 15.0,
        request_timeout: float = 10.0,
        max_tracked_queries: int = 4096,
        owns_service: bool = False,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._quota = QuotaRegistry(quota) if quota is not None else None
        self._drain_timeout = drain_timeout
        self._heartbeat_seconds = heartbeat_seconds
        self._request_timeout = request_timeout
        self._max_tracked_queries = max_tracked_queries
        self._owns_service = owns_service
        self._server: asyncio.base_events.Server | None = None
        self._address: tuple[str, int] | None = None
        self._closing = False
        self._conn_tasks: set[asyncio.Task] = set()
        #: insertion-ordered id -> entry; oldest *settled* entries are
        #: pruned past max_tracked_queries so a long-lived server's memory
        #: is bounded by its live set, not its history
        self._entries: dict[str, _ServedQuery] = {}
        self._started_at = time.monotonic()
        # request/stream tallies live on the service's observability
        # registry (scope ``server``), so /metrics and /healthz always
        # agree; a service-less construction path keeps a private registry
        registry = getattr(service, "registry", None)
        self._registry = registry if registry is not None else MetricsRegistry()
        scope = self._registry.scope("server")
        self._c_requests = scope.counter(
            "requests_total", "HTTP requests parsed off accepted connections"
        )
        self._c_submitted = scope.counter(
            "queries_submitted_total", "Queries accepted over HTTP"
        )
        self._g_sse_active = scope.gauge(
            "sse_streams_active", "Live SSE event streams"
        )
        self._c_sse_events = scope.counter(
            "sse_events_total", "SSE events written across all streams"
        )
        self._h_request_seconds = scope.histogram(
            "request_seconds", "Request handling wall clock"
        )
        scope.gauge(
            "quota_sheds", "Requests shed by per-client token buckets"
        ).set_function(lambda: self._quota.sheds if self._quota else 0)

    # -- lifecycle ------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; available once :meth:`start` ran."""
        if self._address is None:
            raise ServiceError("the HTTP server has not been started")
        return self._address

    async def start(self) -> None:
        """Bind the listening socket (port 0 picks an ephemeral port)."""
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])

    async def shutdown(self) -> None:
        """Graceful stop: refuse new work, drain streams, then the service.

        1. stop accepting connections and mark the server draining (new
           submissions get 503);
        2. give live queries ``drain_timeout`` seconds to settle on their
           own — their SSE streams flush the final rounds + terminal event;
        3. cancel the stragglers (their streams observe the ``cancelled``
           terminal event) and wait for the remaining connections;
        4. only then, if this server owns the service, ``service.close()``.
        """
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._drain_timeout
        while loop.time() < deadline and any(
            not entry.handle.status.terminal
            for entry in self._entries.values()
        ):
            await asyncio.sleep(0.05)
        for entry in list(self._entries.values()):
            if not entry.handle.status.terminal:
                entry.handle.cancel()
        pending = [task for task in self._conn_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=max(1.0, self._drain_timeout))
        for task in list(self._conn_tasks):
            task.cancel()
        if self._owns_service:
            await loop.run_in_executor(None, self._service.close)

    # -- connection plumbing -------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), self._request_timeout
                )
            except asyncio.TimeoutError:
                return
            if request is None:
                return
            self._c_requests.inc()
            handling_started = time.perf_counter()
            span = (
                obs_trace.start_span(
                    "http_request", method=request.method, path=request.path
                )
                if self._registry.enabled
                else None
            )
            try:
                with obs_trace.activate(span):
                    await self._dispatch(request, writer)
            except HttpError as error:
                await send_json(
                    writer, error.status, error.body(), headers=error.headers
                )
            finally:
                if span is not None:
                    span.end()
                self._h_request_seconds.observe(
                    time.perf_counter() - handling_started
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # the client went away; nothing to answer
        except asyncio.CancelledError:
            raise
        except Exception as error:  # defensive: a handler bug is a 500
            try:
                await send_json(
                    writer,
                    500,
                    {
                        "error": type(error).__name__,
                        "message": str(error),
                        "status": 500,
                    },
                )
            except Exception:
                pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        path, method = request.path, request.method
        if path == "/healthz":
            self._require(method, "GET")
            return await self._handle_health(writer)
        if path == "/metrics":
            self._require(method, "GET")
            return await send_text(
                writer, 200, self._registry.render_prometheus()
            )
        if path == "/v1/queries":
            self._require(method, "POST")
            self._admit(request, writer)
            return await self._handle_submit(request, writer)
        if path == "/v1/queries:batch":
            self._require(method, "POST")
            self._admit(request, writer)
            return await self._handle_batch(request, writer)
        match = _QUERY_PATH.fullmatch(path)
        if match:
            entry = self._entries.get(match.group(1))
            if entry is None:
                raise HttpError(
                    404,
                    f"unknown query id {match.group(1)!r}",
                    payload={"error": "UnknownQueryId"},
                )
            tail = match.group(2) or ""
            if tail == "":
                if method == "GET":
                    return await send_json(
                        writer, 200, self._query_payload(entry)
                    )
                if method == "DELETE":
                    return await self._handle_cancel(entry, writer)
                self._require(method, "GET")  # raises 405 naming GET
            elif tail == "/events":
                self._require(method, "GET")
                return await self._handle_events(entry, writer)
            else:  # /refine
                self._require(method, "POST")
                self._admit(request, writer)
                return await self._handle_refine(entry, request, writer)
        raise HttpError(
            404, f"no route for {method} {path}", payload={"error": "NoRoute"}
        )

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(
                405,
                f"method {method} not allowed here (use {expected})",
                headers={"Allow": expected},
                payload={"error": "MethodNotAllowed"},
            )

    def _admit(self, request: HttpRequest, writer: asyncio.StreamWriter) -> None:
        """Draining + per-client quota checks for work-creating requests."""
        if self._closing:
            raise HttpError(
                503,
                "server is draining; no new work accepted",
                payload={"error": "ServerDraining"},
            )
        if self._quota is None:
            return
        peer = writer.get_extra_info("peername")
        client = peer[0] if peer else "unknown"
        delay = self._quota.admit(client)
        if delay > 0.0:
            raise HttpError(
                429,
                f"client {client} exceeded its request quota",
                headers={"Retry-After": self._quota.retry_after(delay)},
                payload={"error": "ClientQuotaExceeded"},
            )

    # -- submission -----------------------------------------------------
    def _submit_kwargs(self, spec: dict, defaults: dict) -> tuple[str, dict]:
        """Validate one submit spec; ``(aql, submit kwargs)`` or 400."""
        if not isinstance(spec, dict):
            raise HttpError(400, "each query spec must be a JSON object")
        merged = {**defaults, **spec}
        aql = merged.get("aql")
        if not isinstance(aql, str) or not aql.strip():
            raise HttpError(400, "the 'aql' field (a non-empty string) is required")
        kwargs: dict = {}
        for name, requirement in (
            ("error_bound", "positive number"),
            ("confidence", "number in (0, 1)"),
            ("deadline", "non-negative number"),
            ("seed", "integer"),
            ("max_rounds", "positive integer"),
        ):
            if name not in merged or merged[name] is None:
                continue
            value = merged[name]
            ok = isinstance(value, _NUMBER) and not isinstance(value, bool)
            if ok:
                if name in ("seed", "max_rounds"):
                    ok = isinstance(value, int) and (
                        name == "seed" or value >= 1
                    )
                elif name == "confidence":
                    ok = 0.0 < value < 1.0
                elif name == "error_bound":
                    ok = value > 0.0
                else:  # deadline
                    ok = value >= 0.0
            if not ok:
                raise HttpError(400, f"field {name!r} must be a {requirement}")
            kwargs[name] = value
        return aql, kwargs

    def _submit(self, aql: str, kwargs: dict) -> _ServedQuery:
        try:
            handle = self._service.submit(aql, **kwargs)
        except ReproError as error:
            raise _http_error_from(error)
        entry = _ServedQuery(f"q{handle.sequence}", handle)
        self._entries[entry.id] = entry
        self._c_submitted.inc()
        self._prune_entries()
        return entry

    def _prune_entries(self) -> None:
        if len(self._entries) <= self._max_tracked_queries:
            return
        for query_id, entry in list(self._entries.items()):
            if len(self._entries) <= self._max_tracked_queries:
                break
            if entry.handle.status.terminal:
                del self._entries[query_id]

    def _accepted_payload(self, entry: _ServedQuery) -> dict:
        return {
            "id": entry.id,
            "status": entry.handle.status.value,
            "kind": entry.handle.kind,
            "links": {
                "status": f"/v1/queries/{entry.id}",
                "events": f"/v1/queries/{entry.id}/events",
            },
        }

    async def _handle_submit(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        aql, kwargs = self._submit_kwargs(request.json(), {})
        entry = self._submit(aql, kwargs)
        await send_json(writer, 202, self._accepted_payload(entry))

    async def _handle_batch(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        body = request.json()
        specs = body.get("queries")
        if not isinstance(specs, list) or not specs:
            raise HttpError(
                400, "the 'queries' field (a non-empty array) is required"
            )
        defaults = {
            name: body[name]
            for name in ("error_bound", "confidence", "seed", "deadline")
            if name in body
        }
        outcomes: list[dict] = []
        accepted = 0
        for spec in specs:
            # per-entry outcomes: an admission shed mid-batch must not
            # disturb (or hide) the entries already accepted
            try:
                aql, kwargs = self._submit_kwargs(spec, defaults)
                entry = self._submit(aql, kwargs)
            except HttpError as error:
                outcomes.append(error.body())
                continue
            outcomes.append(self._accepted_payload(entry))
            accepted += 1
        await send_json(
            writer,
            200,
            {
                "queries": outcomes,
                "accepted": accepted,
                "rejected": len(outcomes) - accepted,
            },
        )

    # -- status / result ------------------------------------------------
    def _settled_error(self, handle: QueryHandle) -> dict:
        try:
            handle.result(timeout=0.0)
        except ReproError as error:
            return error_payload(error)
        raise ServiceError("settled error requested for a live query")

    def _query_payload(self, entry: _ServedQuery) -> dict:
        handle = entry.handle
        status = handle.status
        trace = handle.progress()
        payload = {
            "id": entry.id,
            "status": status.value,
            "kind": handle.kind,
            "total_draws": handle.total_draws,
            "rounds_completed": len(trace),
            "latest": encode_trace(trace[-1]) if trace else None,
            "result": None,
            "error": None,
        }
        if status is QueryStatus.SUCCEEDED:
            payload["result"] = encode_result(handle.result(timeout=0.0))
        elif status.terminal:
            payload["error"] = self._settled_error(handle)
        return payload

    async def _handle_cancel(
        self, entry: _ServedQuery, writer: asyncio.StreamWriter
    ) -> None:
        cancelled = entry.handle.cancel()
        await send_json(
            writer,
            200,
            {
                "id": entry.id,
                "cancelled": cancelled,
                "status": entry.handle.status.value,
            },
        )

    async def _handle_refine(
        self, entry: _ServedQuery, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        body = request.json()
        error_bound = body.get("error_bound")
        if (
            not isinstance(error_bound, _NUMBER)
            or isinstance(error_bound, bool)
            or error_bound <= 0.0
        ):
            raise HttpError(
                400, "the 'error_bound' field (a positive number) is required"
            )
        try:
            entry.handle.refine(float(error_bound))
        except ServiceOverloadedError as error:
            raise _http_error_from(error)
        except ServiceError as error:
            # unlike lifecycle 503s, refining the wrong kind of query (or
            # a failed/cancelled one) is a client error about *this*
            # resource
            raise HttpError(
                400, str(error), payload={"error": type(error).__name__}
            )
        await send_json(
            writer,
            202,
            {
                "id": entry.id,
                "status": entry.handle.status.value,
                "error_bound": float(error_bound),
            },
        )

    # -- SSE ------------------------------------------------------------
    async def _handle_events(
        self, entry: _ServedQuery, writer: asyncio.StreamWriter
    ) -> None:
        """Stream the anytime trace: push per round, then a terminal event.

        Subscribe-then-snapshot makes the stream gapless: the listener is
        registered first, the ``progress()`` snapshot replays everything
        already completed, and queued round events that the snapshot
        already covered are dropped by position — so the emitted rounds
        match the handle's trace entry-for-entry regardless of when the
        client connected.
        """
        handle = entry.handle
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def listener(event: str, payload) -> None:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, (event, payload))
            except RuntimeError:
                pass  # the loop is gone (shutdown); the stream is over

        handle.subscribe(listener)
        stream = SseStream(writer)
        self._g_sse_active.inc()
        try:
            await stream.start()
            emitted = 0
            for trace in handle.progress():
                await stream.emit("round", encode_trace(trace))
                emitted += 1
            if handle.status.terminal:
                await self._emit_terminal(stream, entry)
                return
            while True:
                try:
                    event, payload = await asyncio.wait_for(
                        queue.get(), timeout=self._heartbeat_seconds
                    )
                except asyncio.TimeoutError:
                    await stream.comment("keep-alive")
                    continue
                if event == "round":
                    position, _trace = payload
                    if position < emitted:
                        continue  # the snapshot already replayed it
                    trace = handle.progress()
                    while emitted <= position and emitted < len(trace):
                        await stream.emit(
                            "round", encode_trace(trace[emitted])
                        )
                        emitted += 1
                else:  # settled
                    # flush rounds that landed between queue and terminal
                    for trace in handle.progress()[emitted:]:
                        await stream.emit("round", encode_trace(trace))
                        emitted += 1
                    await self._emit_terminal(stream, entry)
                    return
        except ConnectionError:
            pass  # the client hung up mid-stream; the query runs on
        finally:
            handle.unsubscribe(listener)
            self._g_sse_active.dec()
            self._c_sse_events.inc(stream.events_sent)

    async def _emit_terminal(self, stream: SseStream, entry: _ServedQuery) -> None:
        handle = entry.handle
        status = handle.status
        if status is QueryStatus.SUCCEEDED:
            await stream.emit(
                "result",
                {
                    "id": entry.id,
                    "status": status.value,
                    "result": encode_result(handle.result(timeout=0.0)),
                },
            )
        elif status is QueryStatus.CANCELLED:
            await stream.emit(
                "cancelled", {"id": entry.id, "status": status.value}
            )
        else:
            await stream.emit(
                "error",
                {
                    "id": entry.id,
                    "status": status.value,
                    **self._settled_error(handle),
                },
            )

    # -- health ---------------------------------------------------------
    async def _handle_health(self, writer: asyncio.StreamWriter) -> None:
        payload = {
            "status": "draining" if self._closing else "ok",
            "server": {
                "uptime_s": time.monotonic() - self._started_at,
                "requests": int(self._c_requests.value),
                "queries_submitted": int(self._c_submitted.value),
                "queries_tracked": len(self._entries),
                "sse_streams_active": int(self._g_sse_active.value),
                "sse_events_sent": int(self._c_sse_events.value),
                "quota_sheds": self._quota.sheds if self._quota else 0,
            },
            "service": self._service.health(),
        }
        await send_json(writer, 200, payload)


# ---------------------------------------------------------------------------
# Synchronous facade: run the asyncio server on a dedicated thread
# ---------------------------------------------------------------------------
class ServerThread:
    """A :class:`ReproHTTPServer` running on its own event-loop thread.

    The synchronous face the CLI, the tests and the benchmark share:
    ``start()`` returns once the socket is bound (``address`` is then
    valid), ``stop()`` runs the graceful shutdown and joins the thread.
    Usable as a context manager.
    """

    def __init__(self, server: ReproHTTPServer) -> None:
        self._server = server
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None

    @property
    def server(self) -> ReproHTTPServer:
        return self._server

    @property
    def address(self) -> tuple[str, int]:
        return self._server.address

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-http-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            await self._server.start()
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        await self._stop_event.wait()
        await self._server.shutdown()

    def stop(self, timeout: float = 30.0) -> None:
        """Trigger the graceful shutdown and wait for the thread to exit."""
        thread = self._thread
        if thread is None or not thread.is_alive():
            return
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # the loop already finished
        thread.join(timeout=timeout)
        if thread.is_alive():  # pragma: no cover - defensive
            raise ServiceError(
                "the HTTP server thread did not stop within "
                f"{timeout:.1f}s (streams still draining?)"
            )

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.stop()


def serve_in_thread(
    service: AggregateQueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    **server_kwargs,
) -> ServerThread:
    """Start an HTTP front-end for ``service`` on a background thread."""
    return ServerThread(ReproHTTPServer(service, host, port, **server_kwargs)).start()
