"""Minimal HTTP/1.1 + Server-Sent-Events plumbing over asyncio streams.

The front-end must run anywhere the library runs, so this is stdlib-only:
no web framework, no event-loop add-ons — one request parser over an
``asyncio.StreamReader``, JSON response helpers over the matching writer,
and an SSE stream writer.  The protocol surface is deliberately narrow:

* one request per connection (every response carries
  ``Connection: close``), which keeps the server loop trivial and works
  with every stdlib client (``urllib``, ``http.client``);
* bodies are read by ``Content-Length`` only (no chunked *requests*);
* streaming responses (SSE) send no ``Content-Length`` and end when the
  server closes the connection — exactly the pre-chunked HTTP/1.x
  streaming model, which ``http.client`` reads incrementally.

Every JSON byte goes through ``json.dumps(..., allow_nan=False)``: a NaN
anywhere in a payload is a server bug (the engine's extreme rounds carry
a 0.0 MoE sentinel for exactly this reason) and must fail loudly rather
than emit invalid JSON.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from dataclasses import dataclass, field

__all__ = [
    "HttpError",
    "HttpRequest",
    "SseStream",
    "read_request",
    "send_json",
    "send_text",
]

#: request-line + headers may not exceed this many bytes in total
MAX_HEADER_BYTES = 16 * 1024
#: request bodies above this are rejected with 413
MAX_BODY_BYTES = 4 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Content",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """An error that maps directly onto an HTTP response.

    Raised anywhere inside request handling; the connection loop turns it
    into a JSON error response with ``status``, optional extra
    ``headers`` (e.g. ``Retry-After``) and optional extra ``payload``
    fields merged into the error body.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: dict[str, str] | None = None,
        payload: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})
        self.payload = dict(payload or {})

    def body(self) -> dict:
        """The JSON error body: payload fields under a stable envelope."""
        body = {
            "error": self.payload.pop("error", "HttpError"),
            "message": str(self),
            "status": self.status,
        }
        body.update(self.payload)
        return body


@dataclass
class HttpRequest:
    """One parsed request: method, decoded path, query params, headers, body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body decoded as a JSON object; HttpError(400) otherwise."""
        if not self.body:
            return {}
        try:
            decoded = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(decoded, dict):
            raise HttpError(400, "request body must be a JSON object")
        return decoded


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one HTTP/1.x request; None on a clean EOF before any bytes."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, "malformed HTTP request line")
    method, target, _version = parts

    headers: dict[str, str] = {}
    header_bytes = len(request_line)
    while True:
        line = await reader.readline()
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(431, "request headers too large")
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HttpError(400, "connection closed mid-headers")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line: {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()

    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(400, f"invalid Content-Length: {raw_length!r}")
    if length < 0:
        raise HttpError(400, f"invalid Content-Length: {raw_length!r}")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body")

    path, _, query_string = target.partition("?")
    return HttpRequest(
        method=method.upper(),
        path=urllib.parse.unquote(path),
        query=dict(urllib.parse.parse_qsl(query_string)),
        headers=headers,
        body=body,
    )


def _head(status: int, headers: dict[str, str]) -> bytes:
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    *,
    headers: dict[str, str] | None = None,
) -> None:
    """Write one complete JSON response (Connection: close semantics)."""
    body = json.dumps(payload, allow_nan=False).encode("utf-8") + b"\n"
    all_headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
        "Cache-Control": "no-store",
    }
    if headers:
        all_headers.update(headers)
    writer.write(_head(status, all_headers) + body)
    await writer.drain()


async def send_text(
    writer: asyncio.StreamWriter,
    status: int,
    text: str,
    *,
    content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    headers: dict[str, str] | None = None,
) -> None:
    """Write one complete plain-text response (``/metrics`` exposition).

    The default content type is the Prometheus text exposition format's.
    """
    body = text.encode("utf-8")
    all_headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close",
        "Cache-Control": "no-store",
    }
    if headers:
        all_headers.update(headers)
    writer.write(_head(status, all_headers) + body)
    await writer.drain()


class SseStream:
    """A ``text/event-stream`` response being written incrementally.

    Events carry JSON payloads; the stream ends when the server closes
    the connection after the terminal event (``result`` / ``error`` /
    ``cancelled``), which is how clients know the query settled.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        #: events written so far (server counters aggregate this)
        self.events_sent = 0

    async def start(self) -> None:
        """Send the response head; events may follow immediately."""
        self._writer.write(
            _head(
                200,
                {
                    "Content-Type": "text/event-stream",
                    "Cache-Control": "no-store",
                    "Connection": "close",
                },
            )
        )
        await self._writer.drain()

    async def emit(self, event: str, data: dict) -> None:
        """Write one named event with a single-line JSON data payload."""
        payload = json.dumps(data, allow_nan=False)
        self._writer.write(f"event: {event}\ndata: {payload}\n\n".encode("utf-8"))
        await self._writer.drain()
        self.events_sent += 1

    async def comment(self, text: str) -> None:
        """Write a comment line (the SSE keep-alive idiom)."""
        self._writer.write(f": {text}\n\n".encode("utf-8"))
        await self._writer.drain()
