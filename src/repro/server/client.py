"""A stdlib HTTP client for the ``repro.server`` front-end.

Thin on purpose: ``http.client`` requests against the v1 endpoints, JSON
in and out, plus an incremental SSE reader for the per-round event
stream.  The tests, the benchmark and ``examples/http_serving.py`` all
drive the server through this client, so the wire format is exercised by
a *second* independent implementation rather than the server talking to
itself.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.errors import ReproError, ResultTimeoutError

__all__ = ["HttpStatusError", "ReproClient"]


class HttpStatusError(ReproError):
    """A non-2xx response from the server, carrying its JSON error body."""

    def __init__(self, status: int, payload: dict, headers: dict[str, str]):
        message = payload.get("message") or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.headers = headers

    @property
    def retry_after(self) -> str | None:
        """The ``Retry-After`` value on 429 responses, if any."""
        return self.headers.get("retry-after")


class ReproClient:
    """One server address; a fresh connection per request (the server is
    ``Connection: close``), so a client instance is cheap and stateless."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
            if response.status >= 400:
                raise HttpStatusError(
                    response.status,
                    decoded,
                    {name.lower(): value for name, value in response.getheaders()},
                )
            return decoded
        finally:
            connection.close()

    # -- the v1 surface -------------------------------------------------
    def submit(self, aql: str, **params) -> dict:
        """``POST /v1/queries``; the acceptance payload (with ``id``)."""
        return self._request("POST", "/v1/queries", {"aql": aql, **params})

    def submit_batch(self, specs: list[dict], **defaults) -> dict:
        """``POST /v1/queries:batch``; per-entry acceptance outcomes."""
        return self._request(
            "POST", "/v1/queries:batch", {"queries": specs, **defaults}
        )

    def status(self, query_id: str) -> dict:
        """``GET /v1/queries/{id}``: status + latest anytime estimate."""
        return self._request("GET", f"/v1/queries/{query_id}")

    def cancel(self, query_id: str) -> dict:
        return self._request("DELETE", f"/v1/queries/{query_id}")

    def refine(self, query_id: str, error_bound: float) -> dict:
        return self._request(
            "POST",
            f"/v1/queries/{query_id}/refine",
            {"error_bound": error_bound},
        )

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """``GET /metrics``: the raw Prometheus text exposition."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
                raise HttpStatusError(
                    response.status,
                    decoded,
                    {name.lower(): value for name, value in response.getheaders()},
                )
            return raw.decode("utf-8")
        finally:
            connection.close()

    def wait(
        self, query_id: str, timeout: float = 60.0, poll_interval: float = 0.02
    ) -> dict:
        """Poll the status endpoint until the query settles."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.status(query_id)
            if payload["status"] in ("succeeded", "failed", "cancelled"):
                return payload
            if time.monotonic() >= deadline:
                raise ResultTimeoutError(
                    f"query {query_id} did not settle within {timeout:.1f}s"
                )
            time.sleep(poll_interval)

    # -- SSE ------------------------------------------------------------
    def events(self, query_id: str):
        """Yield ``(event, data)`` pairs from the query's SSE stream.

        Incremental: each event is yielded the moment its frame arrives,
        so callers observe rounds as the scheduler completes them.  The
        generator ends when the server closes the stream after the
        terminal event; closing the generator early closes the socket
        (how "client hangs up mid-stream" is expressed).
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/v1/queries/{query_id}/events")
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
                raise HttpStatusError(
                    response.status,
                    decoded,
                    {name.lower(): value for name, value in response.getheaders()},
                )
            event_name = None
            data_lines: list[str] = []
            while True:
                line = response.readline()
                if not line:
                    return  # server closed the stream
                text = line.decode("utf-8").rstrip("\r\n")
                if not text:  # blank line ends one frame
                    if event_name is not None or data_lines:
                        data = "\n".join(data_lines)
                        yield (
                            event_name or "message",
                            json.loads(data) if data else None,
                        )
                    event_name = None
                    data_lines = []
                elif text.startswith(":"):
                    continue  # keep-alive comment
                elif text.startswith("event:"):
                    event_name = text[len("event:") :].strip()
                elif text.startswith("data:"):
                    data_lines.append(text[len("data:") :].strip())
        finally:
            connection.close()
