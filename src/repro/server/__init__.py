"""``repro.server`` — the HTTP/SSE network front-end (S6).

The step from library to network service: a dependency-free HTTP/1.1 +
Server-Sent-Events server (:class:`ReproHTTPServer`, stdlib ``asyncio``
only) wrapping one long-lived
:class:`~repro.core.service.AggregateQueryService`, a synchronous thread
facade (:class:`ServerThread` / :func:`serve_in_thread`) for the CLI and
tests, per-client token-bucket admission (:class:`ClientQuota`), and a
stdlib client (:class:`ReproClient`) that drives the same wire format
from the outside.
"""

from repro.server.app import (
    ReproHTTPServer,
    ServerThread,
    encode_result,
    encode_trace,
    error_payload,
    serve_in_thread,
    status_for,
)
from repro.server.client import HttpStatusError, ReproClient
from repro.server.http import HttpError
from repro.server.quota import ClientQuota, QuotaRegistry, TokenBucket

__all__ = [
    "ClientQuota",
    "HttpError",
    "HttpStatusError",
    "QuotaRegistry",
    "ReproClient",
    "ReproHTTPServer",
    "ServerThread",
    "TokenBucket",
    "encode_result",
    "encode_trace",
    "error_payload",
    "serve_in_thread",
    "status_for",
]
