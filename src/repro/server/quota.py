"""Per-client token-bucket quotas for the HTTP front-end.

Admission control already exists one layer down —
:class:`~repro.core.resilience.ServiceLimits` sheds submissions with
:class:`~repro.errors.ServiceOverloadedError` once the *service* is
saturated — but by then a single chatty client has already reached the
scheduler's doorstep.  The front-end's token buckets shed *per client*
first, so one client hammering ``POST /v1/queries`` exhausts its own
bucket (429 + ``Retry-After``) while everyone else's requests still
reach the service untouched.

Deterministic on purpose: buckets are driven by an injectable monotonic
clock, so tests advance time explicitly instead of sleeping.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

__all__ = ["ClientQuota", "QuotaRegistry", "TokenBucket"]


@dataclass(frozen=True)
class ClientQuota:
    """Token-bucket parameters applied to each distinct client.

    ``burst`` requests may land back-to-back; sustained traffic refills
    at ``rate`` requests per second.
    """

    rate: float
    burst: int

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError("quota rate must be positive (tokens per second)")
        if self.burst < 1:
            raise ValueError("quota burst must allow at least one request")


class TokenBucket:
    """One client's bucket: ``burst`` capacity refilled at ``rate``/s."""

    def __init__(self, quota: ClientQuota, clock=time.monotonic) -> None:
        self._quota = quota
        self._clock = clock
        self._tokens = float(quota.burst)
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens = min(
            float(self._quota.burst), self._tokens + elapsed * self._quota.rate
        )

    def try_acquire(self) -> float:
        """Take one token; 0.0 on success, else seconds until the next one.

        The returned delay is what ``Retry-After`` advertises, rounded up
        to whole seconds by the caller.
        """
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self._quota.rate


class QuotaRegistry:
    """Buckets keyed by client identity (the connection's peer host)."""

    def __init__(self, quota: ClientQuota, clock=time.monotonic) -> None:
        self._quota = quota
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        #: requests shed by a bucket (the server's quota counter)
        self.sheds = 0

    def admit(self, client: str) -> float:
        """Charge one request to ``client``; 0.0 = admitted, else retry delay."""
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self._quota, self._clock
            )
        delay = bucket.try_acquire()
        if delay > 0.0:
            self.sheds += 1
        return delay

    @staticmethod
    def retry_after(delay: float) -> str:
        """``Retry-After`` header value for a shed: whole seconds, >= 1."""
        return str(max(1, math.ceil(delay)))
