"""Simulated human annotation (the paper's crowdsourcing stand-in).

The paper collected HA-GT by showing 10 annotators every schema between a
query's specific and target entities and keeping the schemas *all* of them
marked as semantically similar (the intersection).  We simulate exactly
that protocol at the schema level:

* each annotator ``a`` has a noisy decision pivot ``pivot + jitter_a``;
* a schema with Eq. 2 geometric-mean similarity ``g`` is marked relevant
  by annotator ``a`` with probability ``sigmoid((g - pivot_a)/temp)``;
* the approved set is the intersection across annotators.

Because approval probability rises steeply with semantic similarity, the
intersection behaves like a soft threshold near ``pivot`` — which is what
makes the Table V agreement between tau-relevant and human-annotated
answers peak at an intermediate tau instead of 0 or 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.datasets.builder import DatasetBundle
from repro.errors import DatasetError
from repro.query.aggregate import AggregateQuery
from repro.query.evaluate import aggregate_over, usable_answers
from repro.query.graph import PathQuery, QueryGraph
from repro.utils.rng import derive_seed, ensure_rng


@dataclass(frozen=True)
class HumanGroundTruth:
    """HA-GT: the exact value over the human-approved answers."""

    value: float
    answers: frozenset[int]
    groups: dict[float, float]


class AnnotationOracle:
    """Schema-level simulated annotators over one dataset bundle."""

    def __init__(
        self,
        bundle: DatasetBundle,
        *,
        num_annotators: int = 10,
        pivot: float = 0.80,
        pivot_jitter: float = 0.03,
        temperature: float = 0.02,
        seed: int | None = None,
    ) -> None:
        if num_annotators < 1:
            raise DatasetError("need at least one annotator")
        self._bundle = bundle
        self.num_annotators = num_annotators
        self.pivot = pivot
        self.temperature = temperature
        base_seed = bundle.spec.seed if seed is None else seed
        rng = ensure_rng(derive_seed(base_seed, "annotators", bundle.name))
        self._annotator_pivots = [
            pivot + float(rng.normal(0.0, pivot_jitter))
            for _ in range(num_annotators)
        ]
        self._rng = rng
        self._approved_cache: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # Schema approval
    # ------------------------------------------------------------------
    def _approval_probability(self, geomean: float, annotator: int) -> float:
        pivot = self._annotator_pivots[annotator]
        return 1.0 / (1.0 + math.exp(-(geomean - pivot) / self.temperature))

    def approved_schemas(self, hub_key: str) -> set[str]:
        """Schema labels every annotator marked relevant (the intersection)."""
        cached = self._approved_cache.get(hub_key)
        if cached is not None:
            return cached
        hub = self._bundle.spec.hub(hub_key)
        approved: set[str] = set()
        for schema in hub.all_schemas:
            decision_rng = ensure_rng(
                derive_seed(
                    self._bundle.spec.seed, "annotation", hub_key, schema.label
                )
            )
            unanimous = all(
                decision_rng.random()
                < self._approval_probability(schema.geometric_mean_cosine, annotator)
                for annotator in range(self.num_annotators)
            )
            if unanimous:
                approved.add(schema.label)
        self._approved_cache[hub_key] = approved
        return approved

    # ------------------------------------------------------------------
    # Answer sets
    # ------------------------------------------------------------------
    def _resolve_hub(self, component: PathQuery) -> tuple[str, str]:
        """Map a query component to ``(hub_key, kind)``."""
        for hub in self._bundle.spec.hubs:
            if hub.hub_name != component.specific_name:
                continue
            if (
                component.is_simple
                and component.predicates[0] == hub.canonical_predicate
            ):
                return hub.key, "simple"
            if (
                hub.chain is not None
                and component.predicates == hub.chain.predicates
            ):
                return hub.key, "chain"
        raise DatasetError(
            f"no hub matches component {component.specific_name!r} "
            f"with predicates {component.predicates}"
        )

    def component_answers(self, component: PathQuery) -> set[int]:
        """Human-approved answers for one component."""
        hub_key, kind = self._resolve_hub(component)
        if kind == "chain":
            # Chain answers are wired through the chain's own predicates
            # (or high-similarity synonyms); annotators approve the chain
            # schema itself, so the full chain population qualifies.
            return self._bundle.answers_of(hub_key, "chain")
        approved = self.approved_schemas(hub_key)
        answers: set[int] = set()
        for kind_key in ("simple", "near_miss"):
            for node_id in self._bundle.answers_of(hub_key, kind_key):
                provenance = self._bundle.schema_of(node_id, hub_key, kind_key)
                if provenance is not None and provenance.schema_label in approved:
                    answers.add(node_id)
        return answers

    def human_answers(self, query: QueryGraph) -> set[int]:
        """Intersection across components (composite queries, §V-B)."""
        answers: set[int] | None = None
        for component in query.components:
            component_set = self.component_answers(component)
            answers = component_set if answers is None else answers & component_set
        return answers or set()

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def ground_truth(self, aggregate_query: AggregateQuery) -> HumanGroundTruth:
        """HA-GT for ``aggregate_query`` under the simulated annotators."""
        answers = usable_answers(
            self._bundle.kg,
            aggregate_query,
            self.human_answers(aggregate_query.query),
        )
        value, groups = aggregate_over(self._bundle.kg, aggregate_query, answers)
        return HumanGroundTruth(
            value=value, answers=frozenset(answers), groups=groups
        )
