"""Declarative specifications for the synthetic dataset generators.

A dataset is a set of *hubs* (one specific entity each — "Germany",
"Steven_Spielberg", ...), each surrounded by target entities wired to the
hub through *path schemas*: alternative substructures expressing the same
logical relation with controlled semantic similarity.  This is the
generator-side encoding of the paper's "schema-flexible nature of KGs".

Schema cosines are *targets*: the latent predicate registry materialises
vectors whose cosine to the hub's canonical predicate equals the target, so
the Eq. 2 geometric mean of a schema's path is known at generation time —
which is what lets the simulated annotators and the tau-GT oracle agree on
a calibrated tau (Table V).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import DatasetError


@dataclass(frozen=True)
class AttributeSpec:
    """How a numeric attribute of a hub's target entities is drawn.

    ``scale_by_schema`` shifts the location per schema index so that
    exact-schema answer subsets have different attribute statistics — this
    is what makes AVG/SUM (not just COUNT) sensitive to missed
    schema-flexible answers, as in the paper's Tables VI-VIII.
    """

    name: str
    distribution: str  # "lognormal" | "normal" | "uniform" | "integers"
    params: tuple[float, float]
    scale_by_schema: float = 0.0

    def __post_init__(self) -> None:
        if self.distribution not in ("lognormal", "normal", "uniform", "integers"):
            raise DatasetError(f"unknown distribution {self.distribution!r}")


@dataclass(frozen=True)
class EdgeStep:
    """One edge of a path schema, walking from the answer toward the hub.

    ``cosine`` is the target cosine between this edge's predicate and the
    reference predicate of its position (the hub's canonical predicate for
    simple schemas; the chain predicate of the corresponding hop for chain
    schemas).  ``next_type``/``pool`` describe the node this edge leads to:
    ``None`` means the hub itself; otherwise an intermediate drawn from a
    shared pool of ``pool`` entities of that type (shared pools create the
    realistic fan-in of companies, studios, persons...).
    """

    predicate: str
    cosine: float
    next_type: str | None = None
    pool: int = 1

    def __post_init__(self) -> None:
        if not -1.0 <= self.cosine <= 1.0:
            raise DatasetError(f"cosine out of range: {self.cosine}")
        if self.next_type is not None and self.pool < 1:
            raise DatasetError("intermediate pools need at least one entity")


@dataclass(frozen=True)
class PathSchema:
    """A way of expressing the hub relation, with a generation weight."""

    label: str
    steps: tuple[EdgeStep, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.steps:
            raise DatasetError(f"schema {self.label!r} needs at least one step")
        if self.steps[-1].next_type is not None:
            raise DatasetError(
                f"schema {self.label!r} must end at the hub (next_type=None)"
            )
        for step in self.steps[:-1]:
            if step.next_type is None:
                raise DatasetError(
                    f"schema {self.label!r}: only the last step may reach the hub"
                )
        if self.weight <= 0.0:
            raise DatasetError("schema weight must be positive")

    @property
    def geometric_mean_cosine(self) -> float:
        """The schema's expected Eq. 2 similarity (clamped at 1e-3)."""
        logs = sum(math.log(max(step.cosine, 1e-3)) for step in self.steps)
        return math.exp(logs / len(self.steps))

    @property
    def length(self) -> int:
        """Number of edges in this schema's path."""
        return len(self.steps)


@dataclass(frozen=True)
class ChainSpec:
    """Chain-query wiring: hub -pred1- intermediate -pred2- answer (§V-B)."""

    predicates: tuple[str, str]
    intermediate_type: str
    num_intermediates: int
    fanout: int
    #: per-hop synonym steps (label, cosine) used by a fraction of answers
    synonyms: tuple[tuple[str, float], ...] = ()
    synonym_share: float = 0.2

    def __post_init__(self) -> None:
        if len(self.predicates) != 2:
            raise DatasetError("chain specs currently describe 2-hop chains")
        if self.num_intermediates < 1 or self.fanout < 1:
            raise DatasetError("chain needs at least one intermediate and answer")
        if not 0.0 <= self.synonym_share < 1.0:
            raise DatasetError("synonym_share must be in [0, 1)")


@dataclass(frozen=True)
class HubSpec:
    """One specific entity with its answer population."""

    key: str
    hub_name: str
    hub_types: tuple[str, ...]
    target_type: str
    canonical_predicate: str
    num_correct: int
    correct_schemas: tuple[PathSchema, ...]
    num_near_miss: int = 0
    near_miss_schemas: tuple[PathSchema, ...] = ()
    attributes: tuple[AttributeSpec, ...] = ()
    chain: ChainSpec | None = None

    def __post_init__(self) -> None:
        if self.num_correct < 1:
            raise DatasetError(f"hub {self.key!r} needs at least one correct answer")
        if not self.correct_schemas:
            raise DatasetError(f"hub {self.key!r} needs at least one correct schema")
        if self.num_near_miss and not self.near_miss_schemas:
            raise DatasetError(
                f"hub {self.key!r} has near-misses but no near-miss schemas"
            )

    @property
    def all_schemas(self) -> tuple[PathSchema, ...]:
        """Correct and near-miss schemas, in declaration order."""
        return self.correct_schemas + self.near_miss_schemas


@dataclass(frozen=True)
class OverlapSpec:
    """Entities that answer several hubs at once (composite-query support).

    ``kinds[i]`` selects how the overlap entities wire into ``hub_keys[i]``:
    ``"simple"`` uses the hub's first correct schema, ``"chain"`` threads
    them through the hub's chain spec.
    """

    hub_keys: tuple[str, ...]
    count: int
    kinds: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.hub_keys) < 2:
            raise DatasetError("an overlap needs at least two hubs")
        if self.count < 1:
            raise DatasetError("overlap count must be positive")
        if self.kinds and len(self.kinds) != len(self.hub_keys):
            raise DatasetError("kinds must align with hub_keys")
        for kind in self.kinds:
            if kind not in ("simple", "chain"):
                raise DatasetError(f"unknown overlap kind {kind!r}")

    def kind_for(self, position: int) -> str:
        """'simple' for one-hop correct schemas, 'near_miss'/'chain' otherwise."""
        return self.kinds[position] if self.kinds else "simple"


@dataclass(frozen=True)
class NoiseSpec:
    """Background mass: extra entities and low-similarity edges."""

    num_nodes: int = 700
    node_types: tuple[str, ...] = ("Thing", "Place", "Event", "Work")
    predicates: tuple[tuple[str, float], ...] = (
        ("relatedTo", 0.15),
        ("linksTo", 0.10),
        ("seeAlso", 0.05),
    )
    edges_per_node: float = 3.5
    #: probability that a hub answer receives extra noise edges; density
    #: here is what separates SSB's exponential path enumeration from the
    #: engine's bounded sampling in the timing experiments
    attach_to_answers: float = 0.8
    #: extra same-type distractor entities attached near each hub
    distractors_per_hub: int = 20


@dataclass(frozen=True)
class DatasetSpec:
    """A full synthetic dataset: hubs + overlaps + noise."""

    name: str
    hubs: tuple[HubSpec, ...]
    overlaps: tuple[OverlapSpec, ...] = ()
    noise: NoiseSpec = field(default_factory=NoiseSpec)
    embedding_dim: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.hubs:
            raise DatasetError("a dataset needs at least one hub")
        keys = [hub.key for hub in self.hubs]
        if len(set(keys)) != len(keys):
            raise DatasetError("hub keys must be unique")
        hub_by_key = {hub.key: hub for hub in self.hubs}
        for overlap in self.overlaps:
            target_types = set()
            for position, key in enumerate(overlap.hub_keys):
                hub = hub_by_key.get(key)
                if hub is None:
                    raise DatasetError(f"overlap references unknown hub {key!r}")
                if overlap.kind_for(position) == "chain" and hub.chain is None:
                    raise DatasetError(
                        f"overlap wants a chain through hub {key!r}, "
                        "which has no chain spec"
                    )
                target_types.add(hub.target_type)
            if len(target_types) != 1:
                raise DatasetError(
                    "overlapping hubs must share a target type, got "
                    f"{sorted(target_types)}"
                )

    def hub(self, key: str) -> HubSpec:
        """Look up a hub spec by key; raises for unknown keys."""
        for hub in self.hubs:
            if hub.key == key:
                return hub
        raise DatasetError(f"no hub named {key!r}")
