"""Preset synthetic datasets standing in for DBpedia, Freebase and YAGO2.

Each preset mirrors the flavour of the paper's evaluation workload (Table
IV): the DBpedia-like KG carries the automotive queries (Q1-Q3, Q10), the
Freebase-like KG the language/movie queries (Q5, Q6), and the YAGO2-like
KG museums, cities and soccer (Q7-Q9).  Entity counts are scaled down by
orders of magnitude — the algorithms only ever operate on n-bounded
neighbourhoods, so a scaled hub exercises identical code paths (see
DESIGN.md, substitution table).

``scale`` multiplies every population count; 1.0 gives a KG of a few
thousand nodes per dataset.
"""

from __future__ import annotations

import math

from repro.datasets.spec import (
    AttributeSpec,
    ChainSpec,
    DatasetSpec,
    EdgeStep,
    HubSpec,
    NoiseSpec,
    OverlapSpec,
    PathSchema,
)


def _scaled(count: int, scale: float) -> int:
    return max(1, int(math.ceil(count * scale)))


def dbpedia_like_spec(seed: int = 0, scale: float = 1.0) -> DatasetSpec:
    """Automotive-flavoured KG: Germany's cars, clubs, designers."""
    germany_cars = HubSpec(
        key="germany_cars",
        hub_name="Germany",
        hub_types=("Country",),
        target_type="Automobile",
        canonical_predicate="product",
        num_correct=_scaled(160, scale),
        correct_schemas=(
            PathSchema("direct_product", (EdgeStep("product", 1.0),), weight=0.62),
            PathSchema("direct_assembly", (EdgeStep("assembly", 0.98),), weight=0.12),
            PathSchema(
                "via_company",
                (
                    EdgeStep("assembly", 0.98, next_type="Company", pool=12),
                    EdgeStep("country", 0.81),
                ),
                weight=0.10,
            ),
            PathSchema(
                "direct_manufacturer", (EdgeStep("manufacturer", 0.95),), weight=0.08
            ),
            PathSchema("direct_producedBy", (EdgeStep("producedBy", 0.87),), weight=0.05),
            PathSchema("direct_origin", (EdgeStep("origin", 0.82),), weight=0.03),
        ),
        num_near_miss=_scaled(70, scale),
        near_miss_schemas=(
            PathSchema(
                "via_designer",
                (
                    EdgeStep("designer", 0.45, next_type="Person", pool=8),
                    EdgeStep("nationality", 0.52),
                ),
                weight=0.25,
            ),
            PathSchema("direct_importedTo", (EdgeStep("importedTo", 0.72),), weight=0.35),
            PathSchema(
                "via_dealer",
                (
                    EdgeStep("soldBy", 0.60, next_type="Dealer", pool=6),
                    EdgeStep("dealerIn", 0.75),
                ),
                weight=0.30,
            ),
            PathSchema("direct_carRelation", (EdgeStep("carRelation", 0.30),), weight=0.10),
        ),
        attributes=(
            AttributeSpec("price", "lognormal", (42_000.0, 0.35), scale_by_schema=0.12),
            AttributeSpec("fuel_economy", "uniform", (22.0, 40.0)),
            AttributeSpec("horsepower", "normal", (250.0, 60.0), scale_by_schema=0.08),
            AttributeSpec("body_style_code", "integers", (1.0, 6.0)),
        ),
        chain=ChainSpec(
            predicates=("nationality", "design"),
            intermediate_type="Person",
            num_intermediates=_scaled(12, scale),
            fanout=6,
            synonyms=(("citizenOf", 0.93), ("designedBy", 0.95)),
            synonym_share=0.2,
        ),
    )
    berlin_clubs = HubSpec(
        key="berlin_clubs",
        hub_name="Berlin",
        hub_types=("City",),
        target_type="SoccerClub",
        canonical_predicate="basedIn",
        num_correct=_scaled(60, scale),
        correct_schemas=(
            PathSchema("direct_basedIn", (EdgeStep("basedIn", 1.0),), weight=0.70),
            PathSchema("direct_homeCity", (EdgeStep("homeCity", 0.96),), weight=0.20),
            PathSchema(
                "via_district",
                (
                    EdgeStep("stadiumIn", 0.90, next_type="District", pool=6),
                    EdgeStep("districtOf", 0.88),
                ),
                weight=0.10,
            ),
        ),
        num_near_miss=_scaled(18, scale),
        near_miss_schemas=(
            PathSchema("direct_playedMatchIn", (EdgeStep("playedMatchIn", 0.48),), weight=1.0),
        ),
        attributes=(
            AttributeSpec("members", "lognormal", (8_000.0, 0.6)),
            AttributeSpec("founded", "integers", (1890.0, 2005.0)),
        ),
    )
    bavaria_cars = HubSpec(
        key="bavaria_cars",
        hub_name="Bavaria",
        hub_types=("Region",),
        target_type="Automobile",
        canonical_predicate="registeredIn",
        num_correct=_scaled(70, scale),
        correct_schemas=(
            PathSchema("direct_registeredIn", (EdgeStep("registeredIn", 1.0),), weight=0.75),
            PathSchema("direct_homologatedIn", (EdgeStep("homologatedIn", 0.94),), weight=0.25),
        ),
        num_near_miss=_scaled(15, scale),
        near_miss_schemas=(
            PathSchema("direct_displayedIn", (EdgeStep("displayedIn", 0.42),), weight=1.0),
        ),
        attributes=(
            AttributeSpec("price", "lognormal", (39_000.0, 0.30), scale_by_schema=0.10),
            AttributeSpec("fuel_economy", "uniform", (20.0, 38.0)),
        ),
        chain=ChainSpec(
            predicates=("regionalClub", "sponsoredCar"),
            intermediate_type="SoccerClub",
            num_intermediates=_scaled(8, scale),
            fanout=5,
        ),
    )
    return DatasetSpec(
        name="dbpedia-like",
        hubs=(germany_cars, berlin_clubs, bavaria_cars),
        overlaps=(
            # cycle: cars produced in Germany AND registered in Bavaria
            OverlapSpec(("germany_cars", "bavaria_cars"), _scaled(30, scale)),
            # star: produced in Germany + registered in Bavaria + designed
            # by a German designer (chain) — three components, one chain
            OverlapSpec(
                ("germany_cars", "bavaria_cars", "germany_cars"),
                _scaled(16, scale),
                kinds=("simple", "simple", "chain"),
            ),
            # flower: both chains plus a simple component
            OverlapSpec(
                ("germany_cars", "bavaria_cars", "germany_cars"),
                _scaled(12, scale),
                kinds=("chain", "chain", "simple"),
            ),
        ),
        noise=NoiseSpec(
            num_nodes=_scaled(900, scale),
            distractors_per_hub=_scaled(22, scale),
        ),
        seed=seed,
    )


def freebase_like_spec(seed: int = 0, scale: float = 1.0) -> DatasetSpec:
    """Languages and movies: the WebQuestions-flavoured workload."""
    nigeria_languages = HubSpec(
        key="nigeria_languages",
        hub_name="Nigeria",
        hub_types=("Country",),
        target_type="Language",
        canonical_predicate="spokenIn",
        num_correct=_scaled(120, scale),
        correct_schemas=(
            PathSchema("direct_spokenIn", (EdgeStep("spokenIn", 1.0),), weight=0.78),
            PathSchema("direct_official", (EdgeStep("officialLanguage", 0.93),), weight=0.12),
            PathSchema(
                "via_region",
                (
                    EdgeStep("usedIn", 0.90, next_type="Region", pool=8),
                    EdgeStep("partOf", 0.86),
                ),
                weight=0.10,
            ),
        ),
        num_near_miss=_scaled(50, scale),
        near_miss_schemas=(
            PathSchema("direct_mentionedIn", (EdgeStep("mentionedIn", 0.40),), weight=0.35),
            PathSchema("direct_studiedIn", (EdgeStep("studiedIn", 0.68),), weight=0.65),
        ),
        attributes=(AttributeSpec("speakers", "lognormal", (900_000.0, 1.1)),),
    )
    spielberg_movies = HubSpec(
        key="spielberg_movies",
        hub_name="Steven_Spielberg",
        hub_types=("Person",),
        target_type="Film",
        canonical_predicate="director",
        num_correct=_scaled(48, scale),
        correct_schemas=(
            PathSchema("direct_director", (EdgeStep("director", 1.0),), weight=0.70),
            PathSchema("direct_directedBy", (EdgeStep("directedBy", 0.97),), weight=0.15),
            PathSchema(
                "via_production",
                (
                    EdgeStep("filmedBy", 0.92, next_type="Studio", pool=5),
                    EdgeStep("founder", 0.88),
                ),
                weight=0.15,
            ),
        ),
        num_near_miss=_scaled(35, scale),
        near_miss_schemas=(
            PathSchema("direct_cameo", (EdgeStep("cameoIn", 0.45),), weight=0.35),
            PathSchema("direct_produced", (EdgeStep("producerOf", 0.74),), weight=0.65),
        ),
        attributes=(
            AttributeSpec("box_office", "lognormal", (80_000_000.0, 1.0), scale_by_schema=0.15),
            AttributeSpec("rating", "uniform", (5.0, 9.3)),
            AttributeSpec("year", "integers", (1975.0, 2015.0)),
        ),
        chain=ChainSpec(
            predicates=("collaborator", "directed"),
            intermediate_type="Person",
            num_intermediates=_scaled(10, scale),
            fanout=4,
            synonyms=(("workedWith", 0.94), ("helmed", 0.95)),
        ),
    )
    universal_movies = HubSpec(
        key="universal_movies",
        hub_name="Universal_Pictures",
        hub_types=("Company",),
        target_type="Film",
        canonical_predicate="distributor",
        num_correct=_scaled(75, scale),
        correct_schemas=(
            PathSchema("direct_distributor", (EdgeStep("distributor", 1.0),), weight=0.8),
            PathSchema("direct_releasedBy", (EdgeStep("releasedBy", 0.95),), weight=0.2),
        ),
        num_near_miss=_scaled(45, scale),
        near_miss_schemas=(
            PathSchema("direct_licensed", (EdgeStep("licensedTo", 0.5),), weight=0.4),
            PathSchema("direct_coproduced", (EdgeStep("coproducedBy", 0.70),), weight=0.6),
        ),
        attributes=(
            AttributeSpec("box_office", "lognormal", (55_000_000.0, 0.9), scale_by_schema=0.1),
            AttributeSpec("year", "integers", (1970.0, 2020.0)),
        ),
        chain=ChainSpec(
            predicates=("subsidiary", "produced"),
            intermediate_type="Company",
            num_intermediates=_scaled(8, scale),
            fanout=5,
        ),
    )
    return DatasetSpec(
        name="freebase-like",
        hubs=(nigeria_languages, spielberg_movies, universal_movies),
        overlaps=(
            OverlapSpec(("spielberg_movies", "universal_movies"), _scaled(22, scale)),
            OverlapSpec(
                ("spielberg_movies", "universal_movies", "spielberg_movies"),
                _scaled(14, scale),
                kinds=("simple", "simple", "chain"),
            ),
            OverlapSpec(
                ("spielberg_movies", "universal_movies", "universal_movies"),
                _scaled(10, scale),
                kinds=("chain", "chain", "simple"),
            ),
        ),
        noise=NoiseSpec(
            num_nodes=_scaled(950, scale),
            distractors_per_hub=_scaled(20, scale),
        ),
        seed=seed,
    )


def yago_like_spec(seed: int = 0, scale: float = 1.0) -> DatasetSpec:
    """Museums, cities and soccer: the synthetic-query workload."""
    england_museums = HubSpec(
        key="england_museums",
        hub_name="England",
        hub_types=("Country",),
        target_type="Museum",
        canonical_predicate="locatedIn",
        num_correct=_scaled(95, scale),
        correct_schemas=(
            PathSchema("direct_locatedIn", (EdgeStep("locatedIn", 1.0),), weight=0.66),
            PathSchema("direct_situatedIn", (EdgeStep("situatedIn", 0.97),), weight=0.14),
            PathSchema(
                "via_city",
                (
                    EdgeStep("inCity", 0.95, next_type="City", pool=10),
                    EdgeStep("cityIn", 0.90),
                ),
                weight=0.20,
            ),
        ),
        num_near_miss=_scaled(55, scale),
        near_miss_schemas=(
            PathSchema("direct_exhibitsFrom", (EdgeStep("exhibitsFrom", 0.44),), weight=0.35),
            PathSchema("direct_touredIn", (EdgeStep("touredIn", 0.70),), weight=0.65),
        ),
        attributes=(AttributeSpec("visitors", "lognormal", (250_000.0, 0.9)),),
    )
    china_cities = HubSpec(
        key="china_cities",
        hub_name="China",
        hub_types=("Country",),
        target_type="City",
        canonical_predicate="country",
        num_correct=_scaled(110, scale),
        correct_schemas=(
            PathSchema("direct_country", (EdgeStep("country", 1.0),), weight=0.70),
            PathSchema(
                "via_province",
                (
                    EdgeStep("provinceOf", 0.94, next_type="Province", pool=12),
                    EdgeStep("federalState", 0.89),
                ),
                weight=0.30,
            ),
        ),
        num_near_miss=_scaled(55, scale),
        near_miss_schemas=(
            PathSchema("direct_twinnedWith", (EdgeStep("twinnedWith", 0.38),), weight=0.4),
            PathSchema("direct_tradeHub", (EdgeStep("tradeHubOf", 0.68),), weight=0.6),
        ),
        attributes=(
            AttributeSpec("population", "lognormal", (400_000.0, 0.8), scale_by_schema=0.1),
            AttributeSpec("area", "lognormal", (150.0, 0.5)),
        ),
    )
    spain_players = HubSpec(
        key="spain_players",
        hub_name="Spain",
        hub_types=("Country",),
        target_type="SoccerPlayer",
        canonical_predicate="bornIn",
        num_correct=_scaled(130, scale),
        correct_schemas=(
            PathSchema("direct_bornIn", (EdgeStep("bornIn", 1.0),), weight=0.72),
            PathSchema("direct_nativeOf", (EdgeStep("nativeOf", 0.96),), weight=0.12),
            PathSchema(
                "via_birthCity",
                (
                    EdgeStep("birthCity", 0.95, next_type="City", pool=14),
                    EdgeStep("inCountry", 0.88),
                ),
                weight=0.16,
            ),
        ),
        num_near_miss=_scaled(75, scale),
        near_miss_schemas=(
            PathSchema("direct_residentOf", (EdgeStep("residentOf", 0.66),), weight=0.65),
            PathSchema("direct_fanOf", (EdgeStep("fanbaseIn", 0.35),), weight=0.35),
        ),
        attributes=(
            AttributeSpec("age", "integers", (17.0, 39.0)),
            AttributeSpec("transfer_value", "lognormal", (6_000_000.0, 1.0), scale_by_schema=0.12),
        ),
        chain=ChainSpec(
            predicates=("league", "playerIn"),
            intermediate_type="League",
            num_intermediates=_scaled(6, scale),
            fanout=8,
        ),
    )
    barcelona_players = HubSpec(
        key="barcelona_players",
        hub_name="FC_Barcelona",
        hub_types=("SoccerClub",),
        target_type="SoccerPlayer",
        canonical_predicate="playsFor",
        num_correct=_scaled(55, scale),
        correct_schemas=(
            PathSchema("direct_playsFor", (EdgeStep("playsFor", 1.0),), weight=0.78),
            PathSchema("direct_squadMember", (EdgeStep("squadMember", 0.96),), weight=0.22),
        ),
        num_near_miss=_scaled(40, scale),
        near_miss_schemas=(
            PathSchema("direct_trialAt", (EdgeStep("trialAt", 0.52),), weight=0.45),
            PathSchema("direct_loaned", (EdgeStep("loanedTo", 0.68),), weight=0.55),
        ),
        attributes=(
            AttributeSpec("age", "integers", (17.0, 38.0)),
            AttributeSpec("transfer_value", "lognormal", (9_000_000.0, 0.9)),
        ),
        chain=ChainSpec(
            predicates=("academy", "trained"),
            intermediate_type="Academy",
            num_intermediates=_scaled(5, scale),
            fanout=7,
        ),
    )
    return DatasetSpec(
        name="yago2-like",
        hubs=(england_museums, china_cities, spain_players, barcelona_players),
        overlaps=(
            # cycle: born in Spain AND plays for Barcelona (paper Q9)
            OverlapSpec(("spain_players", "barcelona_players"), _scaled(25, scale)),
            OverlapSpec(
                ("spain_players", "barcelona_players", "spain_players"),
                _scaled(15, scale),
                kinds=("simple", "simple", "chain"),
            ),
            OverlapSpec(
                ("spain_players", "barcelona_players", "barcelona_players"),
                _scaled(10, scale),
                kinds=("chain", "chain", "simple"),
            ),
        ),
        noise=NoiseSpec(
            num_nodes=_scaled(1000, scale),
            distractors_per_hub=_scaled(24, scale),
        ),
        seed=seed,
    )
