"""Latent predicate vector registry.

Every generated predicate receives a d-dimensional latent vector; the
cosine between a schema predicate and its hub's canonical predicate is
controlled exactly (up to float error) by construction:

    v = c * base + sqrt(1 - c^2) * n        (n ⟂ base, ||n|| = 1)

The registry doubles as the dataset's "offline pre-trained embedding":
wrapped in a :class:`~repro.embedding.lookup.LookupEmbedding` it plays the
role of Algorithm 2's line-1 KG embedding model, while the real trainable
models (TransE & co.) can be fit against the generated triples for the
Table XIII experiment.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.lookup import LookupEmbedding
from repro.errors import DatasetError
from repro.utils.rng import ensure_rng


class PredicateRegistry:
    """Creates and stores latent predicate vectors with controlled cosines."""

    def __init__(self, dim: int, seed: int | np.random.Generator = 0) -> None:
        if dim < 4:
            raise DatasetError("latent dimension must be at least 4")
        self.dim = dim
        self._rng = ensure_rng(seed)
        self._vectors: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._vectors

    def vector(self, name: str) -> np.ndarray:
        """The latent semantic vector of ``predicate``."""
        vector = self._vectors.get(name)
        if vector is None:
            raise DatasetError(f"unregistered predicate {name!r}")
        return vector

    @property
    def names(self) -> tuple[str, ...]:
        """All registered predicate names."""
        return tuple(self._vectors)

    # ------------------------------------------------------------------
    def register_base(self, name: str) -> np.ndarray:
        """A fresh unit direction (canonical predicates, noise predicates)."""
        if name in self._vectors:
            return self._vectors[name]
        vector = self._rng.normal(size=self.dim)
        vector /= np.linalg.norm(vector)
        self._vectors[name] = vector
        return vector

    def register_with_cosine(
        self, name: str, reference: str, cosine: float
    ) -> np.ndarray:
        """A vector with exact ``cosine`` to the ``reference`` predicate.

        Registering the same name twice returns the existing vector —
        callers must keep (name, reference, cosine) consistent, which the
        dataset builder enforces by namespacing predicates per hub.
        """
        if name in self._vectors:
            return self._vectors[name]
        if not -1.0 <= cosine <= 1.0:
            raise DatasetError(f"cosine out of range: {cosine}")
        base = self.vector(reference)
        noise = self._rng.normal(size=self.dim)
        noise -= np.dot(noise, base) * base
        norm = np.linalg.norm(noise)
        if norm < 1e-12:  # pragma: no cover - astronomically unlikely
            raise DatasetError("degenerate orthogonal noise; retry with new seed")
        noise /= norm
        vector = cosine * base + np.sqrt(max(0.0, 1.0 - cosine * cosine)) * noise
        self._vectors[name] = vector
        return vector

    # ------------------------------------------------------------------
    def as_lookup_embedding(self) -> LookupEmbedding:
        """The registry as the dataset's pre-trained predicate embedding."""
        return LookupEmbedding(self._vectors)

    def cosine(self, left: str, right: str) -> float:
        """Realised cosine between two registered predicates."""
        a = self.vector(left)
        b = self.vector(right)
        return float(np.dot(a, b) / (np.linalg.norm(a) * np.linalg.norm(b)))
