"""Query workload generation (the paper's Table IV, 400-query style).

Builds aggregate queries of all five shapes over a dataset bundle, with
filters and GROUP-BY variants, and records per-query metadata (shape,
selectivity, hub) so the benchmark harness can slice results the way the
paper's tables do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.builder import DatasetBundle
from repro.datasets.spec import HubSpec
from repro.errors import DatasetError
from repro.query.aggregate import AggregateFunction, AggregateQuery, Filter, GroupBy
from repro.query.graph import PathQuery, QueryGraph, QueryShape


@dataclass(frozen=True)
class WorkloadQuery:
    """One benchmark query plus its metadata."""

    qid: str
    dataset: str
    shape: QueryShape
    aggregate_query: AggregateQuery
    hub_keys: tuple[str, ...]
    description: str = ""

    @property
    def function(self) -> AggregateFunction:
        """The aggregate function of the wrapped query."""
        return self.aggregate_query.function


def simple_query_graph(hub: HubSpec) -> QueryGraph:
    """The hub's canonical simple query graph (Definition 3)."""
    return QueryGraph.simple(
        hub.hub_name, hub.hub_types, hub.canonical_predicate, [hub.target_type]
    )


def chain_query_graph(hub: HubSpec) -> QueryGraph:
    """The hub's two-hop chain query graph (requires a ChainSpec)."""
    if hub.chain is None:
        raise DatasetError(f"hub {hub.key!r} has no chain spec")
    return QueryGraph.chain(
        hub.hub_name,
        hub.hub_types,
        [
            (hub.chain.predicates[0], [hub.chain.intermediate_type]),
            (hub.chain.predicates[1], [hub.target_type]),
        ],
    )


def component_for(hub: HubSpec, kind: str) -> PathQuery:
    """The hub's PathQuery component of the requested kind."""
    graph = simple_query_graph(hub) if kind == "simple" else chain_query_graph(hub)
    return graph.components[0]


class WorkloadBuilder:
    """Generates the benchmark workload for one dataset bundle."""

    def __init__(self, bundle: DatasetBundle) -> None:
        self._bundle = bundle
        self._queries: list[WorkloadQuery] = []
        self._counter = 0

    # ------------------------------------------------------------------
    def _add(
        self,
        shape: QueryShape,
        aggregate_query: AggregateQuery,
        hub_keys: tuple[str, ...],
        description: str,
    ) -> None:
        self._counter += 1
        self._queries.append(
            WorkloadQuery(
                qid=f"{self._bundle.name}-Q{self._counter:03d}",
                dataset=self._bundle.name,
                shape=shape,
                aggregate_query=aggregate_query,
                hub_keys=hub_keys,
                description=description,
            )
        )

    def _numeric_attribute(self, hub: HubSpec) -> str | None:
        for attribute in hub.attributes:
            if attribute.distribution != "integers":
                return attribute.name
        return None

    def _integer_attribute(self, hub: HubSpec) -> str | None:
        for attribute in hub.attributes:
            if attribute.distribution == "integers":
                return attribute.name
        return None

    # ------------------------------------------------------------------
    def add_simple(self, hub: HubSpec, *, with_filters: bool = True) -> None:
        """Add the hub's COUNT/AVG/SUM simple queries."""
        graph = simple_query_graph(hub)
        self._add(
            QueryShape.SIMPLE,
            AggregateQuery(query=graph, function=AggregateFunction.COUNT),
            (hub.key,),
            f"COUNT of {hub.target_type} related to {hub.hub_name}",
        )
        attribute = self._numeric_attribute(hub)
        if attribute is None:
            return
        for function in (AggregateFunction.AVG, AggregateFunction.SUM):
            self._add(
                QueryShape.SIMPLE,
                AggregateQuery(query=graph, function=function, attribute=attribute),
                (hub.key,),
                f"{function.value}({attribute}) of {hub.target_type} "
                f"related to {hub.hub_name}",
            )
        if with_filters:
            self.add_filtered(hub)

    def add_filtered(self, hub: HubSpec) -> None:
        """A range-filtered variant (Definition 6; paper Q3)."""
        attribute = self._numeric_attribute(hub)
        if attribute is None:
            return
        values = sorted(
            value
            for node_id in self._bundle.answers_of(hub.key, "simple")
            if (value := self._bundle.kg.node(node_id).attribute(attribute))
            is not None
        )
        if len(values) < 10:
            return
        lower = values[len(values) // 4]
        upper = values[3 * len(values) // 4]
        graph = simple_query_graph(hub)
        self._add(
            QueryShape.SIMPLE,
            AggregateQuery(
                query=graph,
                function=AggregateFunction.AVG,
                attribute=attribute,
                filters=(Filter(attribute, lower, upper),),
            ),
            (hub.key,),
            f"AVG({attribute}) with {lower:.0f}<={attribute}<={upper:.0f}",
        )

    def add_group_by(self, hub: HubSpec) -> None:
        """Add a binned GROUP-BY COUNT over the hub's integer attribute."""
        attribute_spec = next(
            (a for a in hub.attributes if a.distribution == "integers"), None
        )
        if attribute_spec is None:
            return
        # Bin into ~5 groups, as in the paper's "each age group" example.
        # Per-group estimation needs groups of meaningful size: a fixed
        # width over a wide range (e.g. founding years) creates dozens of
        # near-singleton groups, a regime no sampling estimator resolves.
        low, high = attribute_spec.params
        bin_width = max(1.0, round((high - low) / 5.0))
        graph = simple_query_graph(hub)
        self._add(
            QueryShape.SIMPLE,
            AggregateQuery(
                query=graph,
                function=AggregateFunction.COUNT,
                group_by=GroupBy(attribute_spec.name, bin_width=bin_width),
            ),
            (hub.key,),
            f"COUNT of {hub.target_type} grouped by {attribute_spec.name}",
        )

    def add_extreme(self, hub: HubSpec) -> None:
        """Add MAX and MIN queries over the hub's numeric attribute."""
        attribute = self._numeric_attribute(hub)
        if attribute is None:
            return
        graph = simple_query_graph(hub)
        for function in (AggregateFunction.MAX, AggregateFunction.MIN):
            self._add(
                QueryShape.SIMPLE,
                AggregateQuery(query=graph, function=function, attribute=attribute),
                (hub.key,),
                f"{function.value}({attribute}) of {hub.target_type}",
            )

    def add_chain(self, hub: HubSpec) -> None:
        """Add chain-shaped queries for hubs with a ChainSpec."""
        if hub.chain is None:
            return
        graph = chain_query_graph(hub)
        self._add(
            QueryShape.CHAIN,
            AggregateQuery(query=graph, function=AggregateFunction.COUNT),
            (hub.key,),
            f"COUNT via chain {hub.chain.predicates}",
        )
        attribute = self._numeric_attribute(hub)
        if attribute is not None:
            self._add(
                QueryShape.CHAIN,
                AggregateQuery(
                    query=graph, function=AggregateFunction.AVG, attribute=attribute
                ),
                (hub.key,),
                f"AVG({attribute}) via chain {hub.chain.predicates}",
            )

    def add_composite(
        self, hub_keys: tuple[str, ...], kinds: tuple[str, ...]
    ) -> None:
        """Add star / cycle / flower queries over overlapping hubs."""
        hubs = [self._bundle.spec.hub(key) for key in hub_keys]
        components = [
            component_for(hub, kind) for hub, kind in zip(hubs, kinds)
        ]
        graph = QueryGraph.compose(components)
        shape = graph.shape
        self._add(
            shape,
            AggregateQuery(query=graph, function=AggregateFunction.COUNT),
            hub_keys,
            f"COUNT over {shape.value} of {', '.join(hub_keys)}",
        )
        attribute = self._numeric_attribute(hubs[0])
        if attribute is not None:
            self._add(
                shape,
                AggregateQuery(
                    query=graph, function=AggregateFunction.AVG, attribute=attribute
                ),
                hub_keys,
                f"AVG({attribute}) over {shape.value} of {', '.join(hub_keys)}",
            )

    # ------------------------------------------------------------------
    def build(self) -> list[WorkloadQuery]:
        """The accumulated workload, in insertion order."""
        spec = self._bundle.spec
        for hub in spec.hubs:
            self.add_simple(hub)
            self.add_group_by(hub)
            self.add_extreme(hub)
            self.add_chain(hub)
        for overlap in spec.overlaps:
            kinds = tuple(
                overlap.kind_for(position) for position in range(len(overlap.hub_keys))
            )
            self.add_composite(overlap.hub_keys, kinds)
        return list(self._queries)


def standard_workload(bundle: DatasetBundle) -> list[WorkloadQuery]:
    """The full benchmark workload for one dataset."""
    return WorkloadBuilder(bundle).build()


def queries_of_shape(
    workload: list[WorkloadQuery], shape: QueryShape
) -> list[WorkloadQuery]:
    """Workload queries of one shape."""
    return [query for query in workload if query.shape is shape]


def guaranteed_queries(workload: list[WorkloadQuery]) -> list[WorkloadQuery]:
    """Queries with accuracy guarantees (COUNT/SUM/AVG, no GROUP-BY)."""
    return [
        query
        for query in workload
        if query.function.has_guarantee
        and query.aggregate_query.group_by is None
    ]
