"""Synthetic dataset substrates for the three paper KGs.

The presets return a :class:`~repro.datasets.builder.DatasetBundle` whose
knowledge graph, predicate embedding, provenance and annotation oracle are
fully seed-deterministic.  Bundles are memoised per (preset, seed, scale),
so benchmarks and tests share one construction.
"""

from functools import lru_cache

from repro.datasets.annotations import AnnotationOracle, HumanGroundTruth
from repro.datasets.builder import AnswerProvenance, DatasetBundle, build_dataset
from repro.datasets.latent import PredicateRegistry
from repro.datasets.presets import (
    dbpedia_like_spec,
    freebase_like_spec,
    yago_like_spec,
)
from repro.datasets.spec import (
    AttributeSpec,
    ChainSpec,
    DatasetSpec,
    EdgeStep,
    HubSpec,
    NoiseSpec,
    OverlapSpec,
    PathSchema,
)
from repro.datasets.workload import (
    WorkloadQuery,
    chain_query_graph,
    guaranteed_queries,
    queries_of_shape,
    simple_query_graph,
    standard_workload,
)


@lru_cache(maxsize=8)
def dbpedia_like(seed: int = 0, scale: float = 1.0) -> DatasetBundle:
    """The DBpedia-flavoured bundle (automotive workload)."""
    return build_dataset(dbpedia_like_spec(seed=seed, scale=scale))


@lru_cache(maxsize=8)
def freebase_like(seed: int = 0, scale: float = 1.0) -> DatasetBundle:
    """The Freebase-flavoured bundle (languages and movies)."""
    return build_dataset(freebase_like_spec(seed=seed, scale=scale))


@lru_cache(maxsize=8)
def yago_like(seed: int = 0, scale: float = 1.0) -> DatasetBundle:
    """The YAGO2-flavoured bundle (museums, cities, soccer)."""
    return build_dataset(yago_like_spec(seed=seed, scale=scale))


ALL_PRESETS = {
    "dbpedia-like": dbpedia_like,
    "freebase-like": freebase_like,
    "yago2-like": yago_like,
}

__all__ = [
    "AnnotationOracle",
    "HumanGroundTruth",
    "AnswerProvenance",
    "DatasetBundle",
    "build_dataset",
    "PredicateRegistry",
    "DatasetSpec",
    "HubSpec",
    "ChainSpec",
    "OverlapSpec",
    "NoiseSpec",
    "PathSchema",
    "EdgeStep",
    "AttributeSpec",
    "dbpedia_like_spec",
    "freebase_like_spec",
    "yago_like_spec",
    "dbpedia_like",
    "freebase_like",
    "yago_like",
    "ALL_PRESETS",
    "WorkloadQuery",
    "standard_workload",
    "simple_query_graph",
    "chain_query_graph",
    "queries_of_shape",
    "guaranteed_queries",
]
