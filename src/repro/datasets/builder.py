"""Materialises a :class:`~repro.datasets.spec.DatasetSpec` into a KG.

The builder produces a :class:`DatasetBundle`: the knowledge graph, the
latent predicate registry (as the pre-trained embedding), and the full
provenance book-keeping — which entity answers which hub through which
schema — that the annotation oracle and the workload generator rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.latent import PredicateRegistry
from repro.datasets.spec import (
    AttributeSpec,
    ChainSpec,
    DatasetSpec,
    HubSpec,
    PathSchema,
)
from repro.embedding.lookup import LookupEmbedding
from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import DatasetError
from repro.kg.graph import KnowledgeGraph
from repro.utils.rng import derive_seed, ensure_rng


@dataclass(frozen=True)
class AnswerProvenance:
    """How one entity answers one hub."""

    hub_key: str
    kind: str  # "simple" | "chain" | "near_miss"
    schema_label: str
    schema_geomean: float


@dataclass
class DatasetBundle:
    """Everything the experiments need about one synthetic dataset."""

    spec: DatasetSpec
    kg: KnowledgeGraph
    registry: PredicateRegistry
    embedding: LookupEmbedding
    #: node id -> all the hub relations this entity participates in
    provenance: dict[int, list[AnswerProvenance]]
    hub_nodes: dict[str, int]
    #: (hub key, kind) -> answer node ids;  kind in {simple, chain, near_miss}
    hub_answers: dict[tuple[str, str], set[int]] = field(default_factory=dict)
    #: hub key -> chain intermediate node ids
    chain_intermediates: dict[str, list[int]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The dataset preset name."""
        return self.spec.name

    def space(self) -> PredicateVectorSpace:
        """A PredicateVectorSpace over the bundle's reference embedding."""
        return PredicateVectorSpace(self.embedding)

    def answers_of(self, hub_key: str, kind: str = "simple") -> set[int]:
        """Answer node ids of ``hub_key`` for the given wiring kind."""
        return set(self.hub_answers.get((hub_key, kind), set()))

    def schema_of(
        self, node_id: int, hub_key: str, kind: str | None = None
    ) -> AnswerProvenance | None:
        """The provenance of ``node_id`` for ``hub_key`` (optionally by kind).

        Overlap entities participate in several hubs and kinds at once, so
        callers interested in e.g. the simple-schema wiring must pass
        ``kind`` to avoid picking up a chain provenance.
        """
        for provenance in self.provenance.get(node_id, ()):
            if provenance.hub_key != hub_key:
                continue
            if kind is None or provenance.kind == kind:
                return provenance
        return None


class DatasetBuilder:
    """Single-use builder; call :meth:`build` once."""

    def __init__(self, spec: DatasetSpec) -> None:
        self.spec = spec
        self._rng = ensure_rng(derive_seed(spec.seed, "dataset", spec.name))
        self._registry = PredicateRegistry(
            spec.embedding_dim, seed=derive_seed(spec.seed, "latent", spec.name)
        )
        self._kg = KnowledgeGraph(name=spec.name)
        self._provenance: dict[int, list[AnswerProvenance]] = {}
        self._hub_nodes: dict[str, int] = {}
        self._hub_answers: dict[tuple[str, str], set[int]] = {}
        self._chain_intermediates: dict[str, list[int]] = {}
        #: (hub key, schema label) -> attachment points for answers
        self._schema_entry_points: dict[tuple[str, str], list[int]] = {}
        self._built = False

    # ------------------------------------------------------------------
    def build(self) -> DatasetBundle:
        """Generate the bundle for this spec (seed-deterministic)."""
        if self._built:
            raise DatasetError("builder instances are single-use")
        self._built = True
        for hub in self.spec.hubs:
            self._register_hub_predicates(hub)
        for hub in self.spec.hubs:
            self._build_hub(hub)
        self._build_overlaps()
        self._build_noise()
        return DatasetBundle(
            spec=self.spec,
            kg=self._kg,
            registry=self._registry,
            embedding=self._registry.as_lookup_embedding(),
            provenance=self._provenance,
            hub_nodes=self._hub_nodes,
            hub_answers=self._hub_answers,
            chain_intermediates=self._chain_intermediates,
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _register_hub_predicates(self, hub: HubSpec) -> None:
        self._registry.register_base(hub.canonical_predicate)
        for schema in hub.all_schemas:
            for step in schema.steps:
                self._registry.register_with_cosine(
                    step.predicate, hub.canonical_predicate, step.cosine
                )
        if hub.chain is not None:
            for predicate in hub.chain.predicates:
                self._registry.register_base(predicate)
            for position, (_hop, synonyms) in enumerate(
                zip(hub.chain.predicates, self._chain_synonym_groups(hub.chain))
            ):
                for name, cosine in synonyms:
                    self._registry.register_with_cosine(
                        name, hub.chain.predicates[position], cosine
                    )

    @staticmethod
    def _chain_synonym_groups(
        chain: ChainSpec,
    ) -> tuple[tuple[tuple[str, float], ...], tuple[tuple[str, float], ...]]:
        """Split the flat synonym list across the two hops (alternating)."""
        first = tuple(synonym for index, synonym in enumerate(chain.synonyms) if index % 2 == 0)
        second = tuple(synonym for index, synonym in enumerate(chain.synonyms) if index % 2 == 1)
        return first, second

    # ------------------------------------------------------------------
    # Hubs
    # ------------------------------------------------------------------
    def _hub_node(self, hub: HubSpec) -> int:
        if self._kg.has_node_named(hub.hub_name):
            node_id = self._kg.node_by_name(hub.hub_name)
            if not self._kg.node(node_id).shares_type_with(hub.hub_types):
                raise DatasetError(
                    f"hub entity {hub.hub_name!r} exists with incompatible types"
                )
            return node_id
        return self._kg.add_node(hub.hub_name, types=hub.hub_types)

    def _build_hub(self, hub: HubSpec) -> None:
        hub_node = self._hub_node(hub)
        self._hub_nodes[hub.key] = hub_node

        for schema in hub.all_schemas:
            self._schema_entry_points[(hub.key, schema.label)] = (
                self._materialize_schema_pools(hub, hub_node, schema)
            )

        self._populate(hub, "simple", hub.num_correct, hub.correct_schemas)
        if hub.num_near_miss:
            self._populate(hub, "near_miss", hub.num_near_miss, hub.near_miss_schemas)
        if hub.chain is not None:
            self._build_chain(hub, hub_node, hub.chain)

    def _materialize_schema_pools(
        self, hub: HubSpec, hub_node: int, schema: PathSchema
    ) -> list[int]:
        """Create the schema's intermediate pools, wired toward the hub.

        Returns the entry points — the nodes an answer's first edge leads
        to ([hub] for single-step schemas).
        """
        next_nodes = [hub_node]
        # Walk from the hub outward: the pool of step i is wired through
        # the predicate of step i+1 toward the already-built layer.
        for index in range(len(schema.steps) - 2, -1, -1):
            step = schema.steps[index]
            wire = schema.steps[index + 1]
            pool_nodes = []
            for position in range(step.pool):
                name = f"{hub.key}:{schema.label}:l{index}:{position}"
                pool_nodes.append(
                    self._kg.add_node(name, types=[step.next_type or "Thing"])
                )
            for node in pool_nodes:
                target = next_nodes[int(self._rng.integers(0, len(next_nodes)))]
                self._kg.add_edge(node, wire.predicate, target)
            next_nodes = pool_nodes
        return next_nodes

    def _populate(
        self,
        hub: HubSpec,
        kind: str,
        count: int,
        schemas: tuple[PathSchema, ...],
    ) -> None:
        """Create ``count`` answers distributed across ``schemas`` by weight."""
        weights = np.asarray([schema.weight for schema in schemas], dtype=np.float64)
        shares = weights / weights.sum()
        allocations = self._allocate(count, shares)
        answer_set = self._hub_answers.setdefault((hub.key, kind), set())

        sequence = 0
        for schema, allocation in zip(schemas, allocations):
            entry_points = self._schema_entry_points[(hub.key, schema.label)]
            schema_index = hub.all_schemas.index(schema)
            for _ in range(allocation):
                name = f"{hub.target_type}:{hub.key}:{kind}:{sequence}"
                sequence += 1
                node_id = self._kg.add_node(
                    name,
                    types=[hub.target_type],
                    attributes=self._draw_attributes(hub.attributes, schema_index),
                )
                entry = entry_points[int(self._rng.integers(0, len(entry_points)))]
                self._kg.add_edge(node_id, schema.steps[0].predicate, entry)
                answer_set.add(node_id)
                self._provenance.setdefault(node_id, []).append(
                    AnswerProvenance(
                        hub_key=hub.key,
                        kind=kind,
                        schema_label=schema.label,
                        schema_geomean=schema.geometric_mean_cosine,
                    )
                )

    @staticmethod
    def _allocate(count: int, shares: np.ndarray) -> list[int]:
        """Largest-remainder allocation of ``count`` across ``shares``."""
        raw = shares * count
        floors = np.floor(raw).astype(int)
        remainder = count - int(floors.sum())
        order = np.argsort(-(raw - floors))
        for index in order[:remainder]:
            floors[index] += 1
        return floors.tolist()

    def _draw_attributes(
        self, specs: tuple[AttributeSpec, ...], schema_index: int
    ) -> dict[str, float]:
        attributes: dict[str, float] = {}
        for spec in specs:
            scale = 1.0 + spec.scale_by_schema * schema_index
            low, high = spec.params
            if spec.distribution == "lognormal":
                value = math.exp(self._rng.normal(math.log(low), high)) * scale
            elif spec.distribution == "normal":
                value = self._rng.normal(low * scale, high)
            elif spec.distribution == "uniform":
                value = self._rng.uniform(low * scale, high * scale)
            else:  # integers
                value = float(self._rng.integers(int(low), int(high) + 1))
            attributes[spec.name] = float(value)
        return attributes

    # ------------------------------------------------------------------
    # Chains
    # ------------------------------------------------------------------
    def _build_chain(self, hub: HubSpec, hub_node: int, chain: ChainSpec) -> None:
        first_synonyms, second_synonyms = self._chain_synonym_groups(chain)
        intermediates = []
        for position in range(chain.num_intermediates):
            name = f"{hub.key}:chain:i{position}"
            node_id = self._kg.add_node(name, types=[chain.intermediate_type])
            predicate = self._pick_chain_predicate(
                chain.predicates[0], first_synonyms, chain.synonym_share
            )
            self._kg.add_edge(node_id, predicate, hub_node)
            intermediates.append(node_id)
        self._chain_intermediates[hub.key] = intermediates

        answer_set = self._hub_answers.setdefault((hub.key, "chain"), set())
        sequence = 0
        for intermediate in intermediates:
            for _ in range(chain.fanout):
                name = f"{hub.target_type}:{hub.key}:chain:{sequence}"
                sequence += 1
                node_id = self._kg.add_node(
                    name,
                    types=[hub.target_type],
                    attributes=self._draw_attributes(hub.attributes, 0),
                )
                predicate = self._pick_chain_predicate(
                    chain.predicates[1], second_synonyms, chain.synonym_share
                )
                self._kg.add_edge(node_id, predicate, intermediate)
                answer_set.add(node_id)
                self._provenance.setdefault(node_id, []).append(
                    AnswerProvenance(
                        hub_key=hub.key,
                        kind="chain",
                        schema_label="chain",
                        schema_geomean=1.0,
                    )
                )

    def _pick_chain_predicate(
        self,
        canonical: str,
        synonyms: tuple[tuple[str, float], ...],
        share: float,
    ) -> str:
        if synonyms and self._rng.random() < share:
            name, _cosine = synonyms[int(self._rng.integers(0, len(synonyms)))]
            return name
        return canonical

    # ------------------------------------------------------------------
    # Overlaps
    # ------------------------------------------------------------------
    def _build_overlaps(self) -> None:
        for group_index, overlap in enumerate(self.spec.overlaps):
            hubs = [self.spec.hub(key) for key in overlap.hub_keys]
            target_type = hubs[0].target_type
            for position in range(overlap.count):
                name = f"{target_type}:overlap{group_index}:{position}"
                node_id = self._kg.add_node(
                    name,
                    types=[target_type],
                    attributes=self._draw_attributes(hubs[0].attributes, 0),
                )
                for hub_position, hub in enumerate(hubs):
                    kind = overlap.kind_for(hub_position)
                    if kind == "simple":
                        self._wire_overlap_simple(hub, node_id)
                    else:
                        self._wire_overlap_chain(hub, node_id)

    def _wire_overlap_simple(self, hub: HubSpec, node_id: int) -> None:
        schema = hub.correct_schemas[0]
        entry_points = self._schema_entry_points[(hub.key, schema.label)]
        entry = entry_points[int(self._rng.integers(0, len(entry_points)))]
        self._kg.add_edge(node_id, schema.steps[0].predicate, entry)
        self._hub_answers.setdefault((hub.key, "simple"), set()).add(node_id)
        self._provenance.setdefault(node_id, []).append(
            AnswerProvenance(
                hub_key=hub.key,
                kind="simple",
                schema_label=schema.label,
                schema_geomean=schema.geometric_mean_cosine,
            )
        )

    def _wire_overlap_chain(self, hub: HubSpec, node_id: int) -> None:
        chain = hub.chain
        assert chain is not None
        intermediates = self._chain_intermediates[hub.key]
        intermediate = intermediates[int(self._rng.integers(0, len(intermediates)))]
        self._kg.add_edge(node_id, chain.predicates[1], intermediate)
        self._hub_answers.setdefault((hub.key, "chain"), set()).add(node_id)
        self._provenance.setdefault(node_id, []).append(
            AnswerProvenance(
                hub_key=hub.key,
                kind="chain",
                schema_label="chain",
                schema_geomean=1.0,
            )
        )

    # ------------------------------------------------------------------
    # Noise
    # ------------------------------------------------------------------
    def _build_noise(self) -> None:
        noise = self.spec.noise
        for name, _cosine_cap in noise.predicates:
            self._registry.register_base(name)
        noise_predicates = [name for name, _cap in noise.predicates]
        if not noise_predicates:
            return

        # Same-type distractor entities parked near each hub's pools: they
        # are candidate answers (right type, inside the scope) whose best
        # paths run over low-similarity predicates.
        for hub in self.spec.hubs:
            hub_node = self._hub_nodes[hub.key]
            for position in range(noise.distractors_per_hub):
                name = f"{hub.target_type}:{hub.key}:distractor:{position}"
                node_id = self._kg.add_node(
                    name,
                    types=[hub.target_type],
                    attributes=self._draw_attributes(hub.attributes, 1),
                )
                predicate = noise_predicates[
                    int(self._rng.integers(0, len(noise_predicates)))
                ]
                self._kg.add_edge(node_id, predicate, hub_node)

        # Generic background nodes with random low-similarity edges.
        background: list[int] = []
        for position in range(noise.num_nodes):
            type_name = noise.node_types[position % len(noise.node_types)]
            node_id = self._kg.add_node(
                f"noise:{self.spec.name}:{position}", types=[type_name]
            )
            background.append(node_id)
        all_nodes = list(self._kg.nodes())
        num_edges = int(noise.num_nodes * noise.edges_per_node)
        for _ in range(num_edges):
            source = background[int(self._rng.integers(0, len(background)))]
            target = all_nodes[int(self._rng.integers(0, len(all_nodes)))]
            if source == target:
                continue
            predicate = noise_predicates[
                int(self._rng.integers(0, len(noise_predicates)))
            ]
            self._kg.add_edge(source, predicate, target)

        # Sprinkle extra edges on answers so their degrees are not uniform
        # (and so SSB's per-answer path enumeration has realistic branching).
        for (hub_key, kind), answers in self._hub_answers.items():
            if kind != "simple":
                continue
            for node_id in answers:
                if self._rng.random() >= noise.attach_to_answers:
                    continue
                for _ in range(int(self._rng.integers(1, 3))):
                    target = background[int(self._rng.integers(0, len(background)))]
                    predicate = noise_predicates[
                        int(self._rng.integers(0, len(noise_predicates)))
                    ]
                    self._kg.add_edge(node_id, predicate, target)


def build_dataset(spec: DatasetSpec) -> DatasetBundle:
    """Materialise ``spec`` deterministically (same spec -> same bundle)."""
    return DatasetBuilder(spec).build()
