"""Descriptive statistics of a knowledge graph.

Mirrors Table III of the paper (node / edge / type / predicate counts) plus
degree statistics the samplers care about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics in the shape of the paper's Table III."""

    name: str
    num_nodes: int
    num_edges: int
    num_node_types: int
    num_edge_predicates: int
    mean_degree: float
    max_degree: int
    num_attributes: int

    def as_table_row(self) -> dict[str, object]:
        """Row dict for the reporting layer (Table III columns)."""
        return {
            "Dataset": self.name,
            "#Nodes": self.num_nodes,
            "#Edges": self.num_edges,
            "#Node-Types": self.num_node_types,
            "#Edge-Predicates": self.num_edge_predicates,
            "MeanDegree": round(self.mean_degree, 2),
        }


def compute_statistics(kg: KnowledgeGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``kg``."""
    degrees = np.array([kg.degree(node_id) for node_id in kg.nodes()], dtype=np.int64)
    attribute_names: set[str] = set()
    for node_id in kg.nodes():
        attribute_names.update(kg.node(node_id).attributes)
    return GraphStatistics(
        name=kg.name,
        num_nodes=kg.num_nodes,
        num_edges=kg.num_edges,
        num_node_types=len(kg.types),
        num_edge_predicates=kg.num_predicates,
        mean_degree=float(degrees.mean()) if degrees.size else 0.0,
        max_degree=int(degrees.max()) if degrees.size else 0,
        num_attributes=len(attribute_names),
    )
