"""Immutable CSR snapshot of a :class:`KnowledgeGraph` (the S1 kernel).

The hot path of the paper — scope BFS, Eq. 5 transition assembly, candidate
filtering — spends its time walking adjacency lists of ``(edge_id,
neighbour)`` tuples and looking up per-edge predicate similarities through
string-keyed dicts.  This module compacts the mutable store into four dense
numpy arrays once per graph version:

* ``indptr`` / ``neighbor_ids`` / ``edge_ids`` — the direction-agnostic
  adjacency in compressed-sparse-row form, entry-for-entry identical in
  order to ``KnowledgeGraph.neighbors``;
* ``edge_predicate_ids`` — dense predicate id per edge, so a per-query
  similarity table indexed by predicate id turns per-edge weighting into
  one fancy-index.

It also precomputes per-type dense node-id arrays and a node x type
membership bitmask so candidate filtering (Definition 4's "shares a type
with the target") becomes a boolean gather instead of a per-node
``frozenset`` intersection.

Snapshots are cached on the graph and invalidated by the graph's
*structure* version counter, which the structural mutators (``add_node`` /
``add_edge``) bump.  Attribute writes (``set_attribute``) bump a separate
counter and leave the snapshot untouched — a CSR snapshot holds no
attribute data, so attribute-streaming workloads never pay a recompile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.errors import NodeNotFoundError
from repro.kg.graph import KnowledgeGraph

#: attribute name under which the (version, snapshot) pair is memoised
_SNAPSHOT_ATTR = "_csr_snapshot_cache"


@dataclass(frozen=True)
class CSRGraph:
    """Read-only array view of one graph version.

    ``neighbor_ids[indptr[u]:indptr[u+1]]`` lists the neighbours of ``u``
    (both edge directions, insertion order) and ``edge_ids`` the incident
    edge per entry, exactly mirroring ``KnowledgeGraph.neighbors(u)``.
    """

    num_nodes: int
    num_edges: int
    indptr: np.ndarray  # (num_nodes + 1,) int64
    neighbor_ids: np.ndarray  # (num_endpoints,) int64
    edge_ids: np.ndarray  # (num_endpoints,) int64, aligned with neighbor_ids
    edge_predicate_ids: np.ndarray  # (num_edges,) int64
    type_names: tuple[str, ...]
    type_index: Mapping[str, int]
    type_matrix: np.ndarray  # (num_nodes, num_types) bool membership bitmask
    nodes_by_type: Mapping[str, np.ndarray]  # per-type dense node-id arrays

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, node_id: int) -> tuple[np.ndarray, np.ndarray]:
        """``(edge_ids, neighbour_ids)`` array views incident to ``node_id``."""
        self._check_node(node_id)
        start, end = self.indptr[node_id], self.indptr[node_id + 1]
        return self.edge_ids[start:end], self.neighbor_ids[start:end]

    def degree(self, node_id: int) -> int:
        """Number of incident edge endpoints (both directions)."""
        self._check_node(node_id)
        return int(self.indptr[node_id + 1] - self.indptr[node_id])

    def gather_neighbors(
        self, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated adjacency of ``nodes`` in one vectorised gather.

        Returns ``(rows, neighbour_ids, edge_ids)`` where ``rows[k]`` is the
        position within ``nodes`` that entry ``k`` belongs to.  Entries keep
        per-node adjacency order, so the result is the flattened equivalent
        of ``[kg.neighbors(n) for n in nodes]``.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        starts = self.indptr[nodes]
        counts = self.indptr[nodes + 1] - starts
        total = int(counts.sum())
        cumulative = np.concatenate(([0], np.cumsum(counts)))
        gather = np.repeat(starts - cumulative[:-1], counts) + np.arange(
            total, dtype=np.int64
        )
        rows = np.repeat(np.arange(len(nodes), dtype=np.int64), counts)
        return rows, self.neighbor_ids[gather], self.edge_ids[gather]

    def gather_within(
        self, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Adjacency of ``nodes`` restricted to endpoints inside ``nodes``.

        Returns ``(positions, rows, cols, edge_ids)``: ``positions`` maps
        every graph node id to its index within ``nodes`` (-1 outside), and
        the entry arrays cover only edges whose far endpoint is also in
        ``nodes`` — the shared gather behind Eq. 5 assembly and the
        strength closed form.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        positions = np.full(self.num_nodes, -1, dtype=np.int64)
        positions[nodes] = np.arange(len(nodes), dtype=np.int64)
        rows, neighbours, edge_ids = self.gather_neighbors(nodes)
        cols = positions[neighbours]
        keep = cols >= 0
        return positions, rows[keep], cols[keep], edge_ids[keep]

    # ------------------------------------------------------------------
    # BFS
    # ------------------------------------------------------------------
    def hop_distance_array(self, source: int, max_hops: int) -> np.ndarray:
        """Frontier-array BFS: hop distance per node, -1 beyond ``max_hops``.

        Each level gathers the whole frontier's adjacency in one slice
        gather, masks already-visited nodes, and dedupes with ``np.unique``
        — no per-edge Python.
        """
        if max_hops < 0:
            raise ValueError("max_hops must be >= 0")
        self._check_node(source)
        distances = np.full(self.num_nodes, -1, dtype=np.int64)
        distances[source] = 0
        frontier = np.asarray([source], dtype=np.int64)
        for depth in range(1, max_hops + 1):
            _, neighbours, _ = self.gather_neighbors(frontier)
            fresh = neighbours[distances[neighbours] < 0]
            if len(fresh) == 0:
                break
            frontier = np.unique(fresh)
            distances[frontier] = depth
        return distances

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def type_mask(self, types: Iterable[str]) -> np.ndarray:
        """Boolean mask over node ids: carries at least one of ``types``.

        Unknown type names contribute nothing (matching
        ``Node.shares_type_with`` on an absent type).
        """
        columns = [self.type_index[name] for name in types if name in self.type_index]
        if not columns:
            return np.zeros(self.num_nodes, dtype=bool)
        if len(columns) == 1:
            return self.type_matrix[:, columns[0]].copy()
        return self.type_matrix[:, columns].any(axis=1)

    def nodes_with_type(self, type_name: str) -> np.ndarray:
        """Dense node-id array of one type ([] for unknown types)."""
        nodes = self.nodes_by_type.get(type_name)
        if nodes is None:
            return np.empty(0, dtype=np.int64)
        return nodes

    def nodes_with_any_type(self, types: Iterable[str]) -> np.ndarray:
        """Sorted distinct node ids carrying any of ``types``."""
        parts = [self.nodes_with_type(name) for name in types]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    # ------------------------------------------------------------------
    # Store hooks (repro.store)
    # ------------------------------------------------------------------
    def export_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        """``(metadata, arrays)`` capturing this snapshot for persistence.

        The arrays are exactly the snapshot's own (read-only) buffers —
        no copy is made here; the store layer decides whether to write
        them to disk or publish them through shared memory.
        ``nodes_by_type`` is *not* exported: it is derivable column by
        column from ``type_matrix`` (see :func:`csr_from_arrays`).
        """
        metadata = {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "type_names": list(self.type_names),
        }
        arrays = {
            "indptr": self.indptr,
            "neighbor_ids": self.neighbor_ids,
            "edge_ids": self.edge_ids,
            "edge_predicate_ids": self.edge_predicate_ids,
            "type_matrix": self.type_matrix,
        }
        return metadata, arrays

    # ------------------------------------------------------------------
    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.num_nodes:
            raise NodeNotFoundError(f"node id {node_id} out of range")


def csr_from_arrays(metadata: Mapping, arrays: Mapping[str, np.ndarray]) -> CSRGraph:
    """Rebuild a :class:`CSRGraph` from :meth:`CSRGraph.export_arrays` output.

    The arrays are adopted as-is (zero-copy: memory-mapped or shared
    segments stay memory-mapped or shared); only the small per-type id
    lists are materialised, by reading ``type_matrix`` columns — the
    column's ascending node ids equal ``build_csr``'s per-type arrays
    because type membership is recorded in node-insertion order.
    """
    from repro.errors import StoreError

    required = ("indptr", "neighbor_ids", "edge_ids", "edge_predicate_ids",
                "type_matrix")
    missing = [name for name in required if name not in arrays]
    if missing:
        raise StoreError(f"snapshot arrays missing segments: {missing}")
    type_names = tuple(metadata["type_names"])
    type_matrix = arrays["type_matrix"]
    type_index = {name: column for column, name in enumerate(type_names)}
    nodes_by_type: dict[str, np.ndarray] = {}
    for name, column in type_index.items():
        typed = np.flatnonzero(type_matrix[:, column]).astype(np.int64)
        typed.setflags(write=False)
        nodes_by_type[name] = typed
    return CSRGraph(
        num_nodes=int(metadata["num_nodes"]),
        num_edges=int(metadata["num_edges"]),
        indptr=arrays["indptr"],
        neighbor_ids=arrays["neighbor_ids"],
        edge_ids=arrays["edge_ids"],
        edge_predicate_ids=arrays["edge_predicate_ids"],
        type_names=type_names,
        type_index=type_index,
        type_matrix=type_matrix,
        nodes_by_type=nodes_by_type,
    )


def install_snapshot(kg: KnowledgeGraph, snapshot: CSRGraph) -> CSRGraph:
    """Seed ``kg``'s snapshot cache with an externally loaded snapshot.

    After installation :func:`csr_snapshot` returns ``snapshot`` without
    running :func:`build_csr` — the point of loading a memory-mapped
    snapshot from the store.  The snapshot must describe the graph's
    *current* structure; size mismatches are rejected here, version/key
    validation happens in the store layer before this call.
    """
    from repro.errors import StoreError

    if snapshot.num_nodes != kg.num_nodes or snapshot.num_edges != kg.num_edges:
        raise StoreError(
            f"snapshot shape ({snapshot.num_nodes} nodes, {snapshot.num_edges} "
            f"edges) does not match the graph ({kg.num_nodes} nodes, "
            f"{kg.num_edges} edges)"
        )
    setattr(kg, _SNAPSHOT_ATTR, (kg.structure_version, snapshot))
    return snapshot


#: number of full ``build_csr`` compilations this process has run; the
#: store tests and the parallel benchmark assert that a memory-mapped
#: snapshot load leaves this counter untouched
_BUILD_CALLS = 0


def build_call_count() -> int:
    """How many times :func:`build_csr` has actually compiled a snapshot."""
    return _BUILD_CALLS


def build_csr(kg: KnowledgeGraph) -> CSRGraph:
    """Compile a fresh :class:`CSRGraph` from the mutable store.

    The adjacency is reconstructed from the triple list with one stable
    sort: endpoint entries are interleaved (subject entry, then object
    entry, per edge) so that the per-node order matches the append order of
    ``KnowledgeGraph.add_edge`` exactly.
    """
    global _BUILD_CALLS
    _BUILD_CALLS += 1
    num_nodes = kg.num_nodes
    num_edges = kg.num_edges
    if num_edges:
        triples = np.fromiter(
            kg.triples(), dtype=np.dtype((np.int64, 3)), count=num_edges
        )
        subjects, predicate_ids, objects = triples[:, 0], triples[:, 1], triples[:, 2]
    else:
        subjects = predicate_ids = objects = np.empty(0, dtype=np.int64)

    # Interleave the two directions per edge; a self-loop contributes one
    # endpoint entry only (mirroring add_edge's ``obj != subject`` guard).
    endpoint_src = np.empty(2 * num_edges, dtype=np.int64)
    endpoint_dst = np.empty(2 * num_edges, dtype=np.int64)
    endpoint_src[0::2], endpoint_src[1::2] = subjects, objects
    endpoint_dst[0::2], endpoint_dst[1::2] = objects, subjects
    endpoint_edge = np.repeat(np.arange(num_edges, dtype=np.int64), 2)
    keep = np.ones(2 * num_edges, dtype=bool)
    keep[1::2] = subjects != objects
    endpoint_src = endpoint_src[keep]
    endpoint_dst = endpoint_dst[keep]
    endpoint_edge = endpoint_edge[keep]

    order = np.argsort(endpoint_src, kind="stable")
    neighbor_ids = endpoint_dst[order]
    edge_ids = endpoint_edge[order]
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(np.bincount(endpoint_src, minlength=num_nodes))

    type_names = kg.types
    type_index = {name: column for column, name in enumerate(type_names)}
    type_matrix = np.zeros((num_nodes, len(type_names)), dtype=bool)
    nodes_by_type: dict[str, np.ndarray] = {}
    for name, column in type_index.items():
        typed = np.asarray(kg.nodes_with_type(name), dtype=np.int64)
        nodes_by_type[name] = typed
        type_matrix[typed, column] = True

    arrays = (neighbor_ids, edge_ids, indptr, predicate_ids, type_matrix)
    for array in arrays:
        array.setflags(write=False)
    for typed in nodes_by_type.values():
        typed.setflags(write=False)
    return CSRGraph(
        num_nodes=num_nodes,
        num_edges=num_edges,
        indptr=indptr,
        neighbor_ids=neighbor_ids,
        edge_ids=edge_ids,
        edge_predicate_ids=predicate_ids,
        type_names=type_names,
        type_index=type_index,
        type_matrix=type_matrix,
        nodes_by_type=nodes_by_type,
    )


def csr_snapshot(kg: KnowledgeGraph) -> CSRGraph:
    """The cached snapshot of ``kg``'s current structure (compiled on miss).

    Keyed on ``kg.structure_version`` only: attribute writes do not evict.
    """
    cached = getattr(kg, _SNAPSHOT_ATTR, None)
    version = kg.structure_version
    if cached is not None and cached[0] == version:
        return cached[1]
    snapshot = build_csr(kg)
    setattr(kg, _SNAPSHOT_ATTR, (version, snapshot))
    return snapshot
