"""NetworkX interoperability for the knowledge-graph store.

Real deployments rarely start from our own JSON format: graphs arrive as
NetworkX objects, edge lists, or another library's export.  These
converters round-trip a :class:`~repro.kg.graph.KnowledgeGraph` through
``networkx.MultiDiGraph`` so users can

* bring an existing NetworkX graph to the engine
  (:func:`from_networkx`), and
* hand a KG to the NetworkX ecosystem — layouts, centrality, components
  — without re-implementing graph algorithms (:func:`to_networkx`).

Conventions: node keys are entity names (unique per Definition 1); node
data carries ``types`` (list of str) and ``attributes`` (dict of str ->
float); edge data carries ``predicate``.  Parallel edges with different
predicates are preserved by the multigraph.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.errors import GraphError
from repro.kg.graph import KnowledgeGraph

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(kg: KnowledgeGraph) -> "nx.MultiDiGraph":
    """Export ``kg`` as a ``networkx.MultiDiGraph``.

    Nodes are keyed by entity name and annotated with ``node_id``,
    ``types`` (sorted list) and ``attributes``; each triple becomes one
    directed edge with a ``predicate`` attribute.
    """
    graph = nx.MultiDiGraph(name=kg.name)
    for node_id in kg.nodes():
        node = kg.node(node_id)
        graph.add_node(
            node.name,
            node_id=node.node_id,
            types=sorted(node.types),
            attributes=dict(node.attributes),
        )
    for subject, predicate_id, obj in kg.triples():
        graph.add_edge(
            kg.node(subject).name,
            kg.node(obj).name,
            predicate=kg.predicate_name(predicate_id),
        )
    return graph


def _node_types(data: dict, key: object) -> Iterable[str]:
    types = data.get("types")
    if types is None:
        raise GraphError(
            f"networkx node {key!r} lacks the 'types' attribute "
            "(a list of type names) required by Definition 1"
        )
    if isinstance(types, str):
        return [types]
    return list(types)


def from_networkx(graph: "nx.Graph", *, name: str | None = None) -> KnowledgeGraph:
    """Build a :class:`KnowledgeGraph` from any NetworkX graph.

    Requirements, matching Definition 1:

    * every node carries ``types`` (a list of type names, or a single
      string) — missing types raise :class:`GraphError`;
    * node keys become entity names (stringified), so they must be
      unique after ``str()``;
    * every edge carries ``predicate`` (missing predicates raise);
    * an optional node attribute ``attributes`` (dict of str -> float)
      populates the numeric attributes.

    Undirected graphs are accepted: each undirected edge becomes one
    stored triple, which the engine already traverses in both
    directions.
    """
    kg = KnowledgeGraph(name=name or (graph.name or "kg"))
    ids: dict[object, int] = {}
    for key, data in graph.nodes(data=True):
        attributes = data.get("attributes") or {}
        if not isinstance(attributes, dict):
            raise GraphError(
                f"networkx node {key!r}: 'attributes' must be a dict, "
                f"got {type(attributes).__name__}"
            )
        ids[key] = kg.add_node(
            str(key),
            types=_node_types(data, key),
            attributes={str(k): float(v) for k, v in attributes.items()},
        )
    for subject, obj, data in graph.edges(data=True):
        predicate = data.get("predicate")
        if not predicate:
            raise GraphError(
                f"networkx edge ({subject!r}, {obj!r}) lacks the "
                "'predicate' attribute"
            )
        kg.add_edge(ids[subject], str(predicate), ids[obj])
    return kg
