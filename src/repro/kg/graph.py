"""In-memory knowledge-graph store (Definition 1 of the paper).

Nodes and predicates are interned to dense integer ids so that samplers and
matchers can use array-based bookkeeping.  The store keeps three access
structures in sync:

* per-node adjacency lists of ``(edge_id, neighbour_id)`` pairs used by the
  random walk and path search (direction-agnostic, as in the paper),
* a triple view ``(subject, predicate, object)`` used by the SPARQL-style
  exact-schema baseline,
* secondary indexes: name -> node, type -> nodes, predicate -> edges.

Names are unique per Definition 1 (KGs are assumed entity-disambiguated);
adding a second node with an existing name raises :class:`GraphError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError


@dataclass(frozen=True)
class Node:
    """A read-only view of one entity."""

    node_id: int
    name: str
    types: frozenset[str]
    attributes: Mapping[str, float]

    def attribute(self, name: str, default: float | None = None) -> float | None:
        """Value of numeric attribute ``name``, or ``default`` if absent."""
        return self.attributes.get(name, default)

    def has_type(self, type_name: str) -> bool:
        """True when the node carries ``type_name``."""
        return type_name in self.types

    def shares_type_with(self, types: Iterable[str]) -> bool:
        """True when the node's type set intersects ``types`` (Def. 4.1)."""
        return not self.types.isdisjoint(types)


@dataclass(frozen=True)
class Edge:
    """A read-only view of one triple ``(subject, predicate, object)``."""

    edge_id: int
    subject: int
    object: int
    predicate_id: int
    predicate: str

    def other_endpoint(self, node_id: int) -> int:
        """The endpoint opposite ``node_id`` (edges traverse both ways)."""
        if node_id == self.subject:
            return self.object
        if node_id == self.object:
            return self.subject
        raise GraphError(f"node {node_id} is not an endpoint of edge {self.edge_id}")


@dataclass
class _NodeRecord:
    name: str
    types: frozenset[str]
    attributes: dict[str, float] = field(default_factory=dict)


@dataclass
class _EdgeRecord:
    subject: int
    object: int
    predicate_id: int


class KnowledgeGraph:
    """A mutable, indexed property graph.

    >>> kg = KnowledgeGraph()
    >>> germany = kg.add_node("Germany", types=["Country"])
    >>> bmw = kg.add_node("BMW_320", types=["Automobile"], attributes={"price": 36_000})
    >>> _ = kg.add_edge(bmw, "assembly", germany)
    >>> kg.num_nodes, kg.num_edges
    (2, 1)
    >>> [kg.node(n).name for n in kg.nodes_with_type("Automobile")]
    ['BMW_320']
    """

    def __init__(self, name: str = "kg") -> None:
        self.name = name
        self._nodes: list[_NodeRecord] = []
        self._edges: list[_EdgeRecord] = []
        # adjacency[u] holds (edge_id, neighbour) for both edge directions.
        self._adjacency: list[list[tuple[int, int]]] = []
        self._predicates: list[str] = []
        self._predicate_ids: dict[str, int] = {}
        self._name_index: dict[str, int] = {}
        self._type_index: dict[str, list[int]] = {}
        self._predicate_edge_index: dict[int, list[int]] = {}
        # Monotone mutation counters.  Structure covers nodes, edges and
        # types — everything a CSR snapshot or a cached query plan depends
        # on; attributes cover numeric property writes only.  Splitting the
        # two means attribute streams (``set_attribute``) never recompile
        # snapshots or evict plans, while structural edits invalidate both.
        self._structure_version = 0
        self._attribute_version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        types: Iterable[str],
        attributes: Mapping[str, float] | None = None,
    ) -> int:
        """Add an entity and return its dense integer id."""
        if name in self._name_index:
            raise GraphError(f"duplicate node name: {name!r}")
        type_set = frozenset(types)
        if not type_set:
            raise GraphError(f"node {name!r} must have at least one type")
        node_id = len(self._nodes)
        self._nodes.append(
            _NodeRecord(name=name, types=type_set, attributes=dict(attributes or {}))
        )
        self._adjacency.append([])
        self._name_index[name] = node_id
        for type_name in type_set:
            self._type_index.setdefault(type_name, []).append(node_id)
        self._structure_version += 1
        return node_id

    def add_edge(self, subject: int, predicate: str, obj: int) -> int:
        """Add a triple and return its edge id."""
        self._check_node(subject)
        self._check_node(obj)
        predicate_id = self.intern_predicate(predicate)
        edge_id = len(self._edges)
        self._edges.append(_EdgeRecord(subject=subject, object=obj, predicate_id=predicate_id))
        self._adjacency[subject].append((edge_id, obj))
        if obj != subject:
            self._adjacency[obj].append((edge_id, subject))
        self._predicate_edge_index.setdefault(predicate_id, []).append(edge_id)
        self._structure_version += 1
        return edge_id

    def set_attribute(self, node_id: int, name: str, value: float) -> None:
        """Set (or overwrite) numeric attribute ``name`` on ``node_id``."""
        self._check_node(node_id)
        self._nodes[node_id].attributes[name] = float(value)
        self._attribute_version += 1

    def intern_predicate(self, predicate: str) -> int:
        """Return the dense id for ``predicate``, creating one if needed."""
        existing = self._predicate_ids.get(predicate)
        if existing is not None:
            return existing
        predicate_id = len(self._predicates)
        self._predicates.append(predicate)
        self._predicate_ids[predicate] = predicate_id
        return predicate_id

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Total mutation counter: bumped by every structural or attribute change."""
        return self._structure_version + self._attribute_version

    @property
    def structure_version(self) -> int:
        """Counter of structural mutations (``add_node`` / ``add_edge``).

        CSR snapshots and cached query plans key on this counter only, so
        attribute writes never invalidate them.
        """
        return self._structure_version

    @property
    def attribute_version(self) -> int:
        """Counter of attribute writes (``set_attribute``)."""
        return self._attribute_version

    @property
    def num_nodes(self) -> int:
        """Number of entities in the graph."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of stored triples."""
        return len(self._edges)

    @property
    def num_predicates(self) -> int:
        """Number of distinct (interned) predicates."""
        return len(self._predicates)

    def node(self, node_id: int) -> Node:
        """Read-only view of ``node_id``; raises :class:`NodeNotFoundError`."""
        self._check_node(node_id)
        record = self._nodes[node_id]
        return Node(
            node_id=node_id,
            name=record.name,
            types=record.types,
            attributes=record.attributes,
        )

    def edge(self, edge_id: int) -> Edge:
        """Read-only view of ``edge_id``; raises :class:`EdgeNotFoundError`."""
        if not 0 <= edge_id < len(self._edges):
            raise EdgeNotFoundError(f"edge id {edge_id} out of range")
        record = self._edges[edge_id]
        return Edge(
            edge_id=edge_id,
            subject=record.subject,
            object=record.object,
            predicate_id=record.predicate_id,
            predicate=self._predicates[record.predicate_id],
        )

    def predicate_of(self, edge_id: int) -> str:
        """The predicate name of ``edge_id`` without building an Edge view.

        Hot-path accessor: samplers and validators call this once per
        traversed edge, so it skips the dataclass construction of
        :meth:`edge`.
        """
        if not 0 <= edge_id < len(self._edges):
            raise EdgeNotFoundError(f"edge id {edge_id} out of range")
        return self._predicates[self._edges[edge_id].predicate_id]

    def node_by_name(self, name: str) -> int:
        """The id of the (unique) node named ``name`` (Definition 1)."""
        node_id = self._name_index.get(name)
        if node_id is None:
            raise NodeNotFoundError(f"no node named {name!r}")
        return node_id

    def has_node_named(self, name: str) -> bool:
        """True when some node carries the name ``name``."""
        return name in self._name_index

    def predicate_name(self, predicate_id: int) -> str:
        """The predicate string behind a dense predicate id."""
        if not 0 <= predicate_id < len(self._predicates):
            raise GraphError(f"predicate id {predicate_id} out of range")
        return self._predicates[predicate_id]

    def predicate_id(self, predicate: str) -> int:
        """The dense id of ``predicate``; raises for unknown predicates."""
        predicate_id = self._predicate_ids.get(predicate)
        if predicate_id is None:
            raise GraphError(f"unknown predicate {predicate!r}")
        return predicate_id

    def has_predicate(self, predicate: str) -> bool:
        """True when ``predicate`` labels at least one edge."""
        return predicate in self._predicate_ids

    @property
    def predicates(self) -> tuple[str, ...]:
        """All predicate names, in interning (insertion) order."""
        return tuple(self._predicates)

    def nodes(self) -> Iterator[int]:
        """Iterate node ids (0..num_nodes-1, insertion order)."""
        return iter(range(len(self._nodes)))

    def edges(self) -> Iterator[Edge]:
        """Iterate all edges as read-only views."""
        for edge_id in range(len(self._edges)):
            yield self.edge(edge_id)

    def triples(self) -> Iterator[tuple[int, int, int]]:
        """``(subject, predicate_id, object)`` triples for embedding trainers."""
        for record in self._edges:
            yield record.subject, record.predicate_id, record.object

    def edge_predicate_ids(self) -> np.ndarray:
        """Dense ``predicate_id`` per edge id (vectorised edge weighting)."""
        return np.fromiter(
            (record.predicate_id for record in self._edges),
            dtype=np.int64,
            count=len(self._edges),
        )

    def neighbors(self, node_id: int) -> list[tuple[int, int]]:
        """``(edge_id, neighbour_id)`` pairs incident to ``node_id``.

        Both edge directions are listed, matching the paper's treatment of
        subgraph matches as undirected paths (Definition 5).
        """
        self._check_node(node_id)
        return self._adjacency[node_id]

    def degree(self, node_id: int) -> int:
        """Number of incident edge endpoints (both directions)."""
        self._check_node(node_id)
        return len(self._adjacency[node_id])

    def neighbor_ids(self, node_id: int) -> list[int]:
        """Neighbour node ids of ``node_id`` (with multiplicity)."""
        return [neighbour for _, neighbour in self.neighbors(node_id)]

    def nodes_with_type(self, type_name: str) -> list[int]:
        """All node ids carrying ``type_name`` (possibly among other types)."""
        return list(self._type_index.get(type_name, ()))

    def nodes_with_any_type(self, types: Iterable[str]) -> list[int]:
        """Union of :meth:`nodes_with_type` over ``types`` (sorted, distinct)."""
        collected: set[int] = set()
        for type_name in types:
            collected.update(self._type_index.get(type_name, ()))
        return sorted(collected)

    @property
    def types(self) -> tuple[str, ...]:
        """All node type names, sorted."""
        return tuple(sorted(self._type_index))

    def edges_with_predicate(self, predicate: str) -> list[int]:
        """Edge ids labelled ``predicate`` ([] for unknown predicates)."""
        predicate_id = self._predicate_ids.get(predicate)
        if predicate_id is None:
            return []
        return list(self._predicate_edge_index.get(predicate_id, ()))

    def objects_of(self, subject: int, predicate: str) -> list[int]:
        """Objects ``o`` with a triple ``(subject, predicate, o)`` (directed)."""
        self._check_node(subject)
        if predicate not in self._predicate_ids:
            return []
        predicate_id = self._predicate_ids[predicate]
        result = []
        for edge_id, _neighbour in self._adjacency[subject]:
            record = self._edges[edge_id]
            if record.subject == subject and record.predicate_id == predicate_id:
                result.append(record.object)
        return result

    def subjects_of(self, obj: int, predicate: str) -> list[int]:
        """Subjects ``s`` with a triple ``(s, predicate, obj)`` (directed)."""
        self._check_node(obj)
        if predicate not in self._predicate_ids:
            return []
        predicate_id = self._predicate_ids[predicate]
        result = []
        for edge_id, _neighbour in self._adjacency[obj]:
            record = self._edges[edge_id]
            if record.object == obj and record.predicate_id == predicate_id:
                result.append(record.subject)
        return result

    def __contains__(self, node_id: object) -> bool:
        return isinstance(node_id, int) and 0 <= node_id < len(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"KnowledgeGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, predicates={self.num_predicates})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < len(self._nodes):
            raise NodeNotFoundError(f"node id {node_id} out of range")
