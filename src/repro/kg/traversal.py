"""Graph traversal: n-bounded scopes (BFS) and bounded path enumeration.

The paper restricts both the exact baseline (SSB, Algorithm 1) and the
semantic-aware random walk to the *n-bounded subgraph* G' of the mapping
node ``us``: the induced graph over every node within ``n`` hops of ``us``
(§III / §IV-A2).  Path enumeration powers the exhaustive semantic-similarity
computation of Eq. 2-3.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.kg.csr import csr_snapshot
from repro.kg.graph import KnowledgeGraph


def hop_distances(kg: KnowledgeGraph, source: int, max_hops: int) -> dict[int, int]:
    """BFS hop distance from ``source`` for all nodes within ``max_hops``.

    Distances treat edges as undirected, matching the paper's edge-to-path
    mapping.  The source itself has distance 0.  Runs as a frontier-array
    BFS over the graph's CSR snapshot — one adjacency gather per level.
    """
    distances = csr_snapshot(kg).hop_distance_array(source, max_hops)
    reached = np.flatnonzero(distances >= 0)
    return {int(node): int(distances[node]) for node in reached}


def bounded_node_set(kg: KnowledgeGraph, source: int, max_hops: int) -> set[int]:
    """The node set of the n-bounded subgraph G' around ``source``."""
    return set(hop_distances(kg, source, max_hops))


def bounded_subgraph(
    kg: KnowledgeGraph, source: int, max_hops: int
) -> tuple[set[int], list[int]]:
    """Nodes and edge ids of the induced n-bounded subgraph around ``source``.

    An edge belongs to G' when both endpoints are within ``max_hops``.
    Returns ``(node_set, edge_ids)``.
    """
    nodes = bounded_node_set(kg, source, max_hops)
    edge_ids: list[int] = []
    seen: set[int] = set()
    for node in nodes:
        for edge_id, neighbour in kg.neighbors(node):
            if neighbour in nodes and edge_id not in seen:
                seen.add(edge_id)
                edge_ids.append(edge_id)
    return nodes, edge_ids


def enumerate_paths(
    kg: KnowledgeGraph,
    source: int,
    target: int,
    max_length: int,
    *,
    node_filter: Callable[[int], bool] | None = None,
    max_paths: int | None = None,
) -> Iterator[list[int]]:
    """Yield all simple paths (as edge-id lists) from ``source`` to ``target``.

    Paths have at most ``max_length`` edges and never repeat a node, which is
    the search space SSB enumerates (its :math:`O(m^n)` step).  ``node_filter``
    can restrict intermediate nodes (e.g. to the n-bounded scope);
    ``max_paths`` caps the enumeration for callers that only need a few.
    """
    if max_length < 1:
        return
    if source == target:
        return

    yielded = 0
    # Depth-first with an explicit stack of (node, neighbour iterator).
    path_edges: list[int] = []
    on_path = {source}
    stack: list[tuple[int, Iterator[tuple[int, int]]]] = [(source, iter(kg.neighbors(source)))]
    while stack:
        current, neighbours = stack[-1]
        advanced = False
        for edge_id, neighbour in neighbours:
            if neighbour in on_path:
                continue
            if neighbour == target:
                yield path_edges + [edge_id]
                yielded += 1
                if max_paths is not None and yielded >= max_paths:
                    return
                continue
            if len(path_edges) + 1 >= max_length:
                # A longer prefix could never reach the target in budget.
                continue
            if node_filter is not None and not node_filter(neighbour):
                continue
            path_edges.append(edge_id)
            on_path.add(neighbour)
            stack.append((neighbour, iter(kg.neighbors(neighbour))))
            advanced = True
            break
        if not advanced:
            stack.pop()
            if path_edges:
                path_edges.pop()
            if stack:
                # The node we just backtracked from is no longer on the path.
                on_path.discard(current)


def path_nodes(kg: KnowledgeGraph, source: int, edge_path: list[int]) -> list[int]:
    """Expand an edge-id path starting at ``source`` into its node sequence."""
    nodes = [source]
    current = source
    for edge_id in edge_path:
        current = kg.edge(edge_id).other_endpoint(current)
        nodes.append(current)
    return nodes
