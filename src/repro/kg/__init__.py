"""Knowledge-graph substrate: storage, indexes, traversal, IO, statistics.

The store follows Definition 1 of the paper: nodes are entities carrying a
unique name, one or more types, and a set of numeric attributes; edges carry
a predicate.  Traversal treats edges as bidirectional (the paper's random
walk and subgraph matches move along paths regardless of triple direction)
while the triple orientation is preserved for the SPARQL-style baseline.
"""

from repro.kg.csr import (
    CSRGraph,
    build_csr,
    csr_from_arrays,
    csr_snapshot,
    install_snapshot,
)
from repro.kg.graph import Edge, KnowledgeGraph, Node
from repro.kg.interop import from_networkx, to_networkx
from repro.kg.io import (
    graph_fingerprint,
    load_json,
    load_triples,
    save_json,
    save_triples,
)
from repro.kg.statistics import GraphStatistics, compute_statistics
from repro.kg.traversal import (
    bounded_node_set,
    bounded_subgraph,
    enumerate_paths,
    hop_distances,
)

__all__ = [
    "CSRGraph",
    "Edge",
    "KnowledgeGraph",
    "Node",
    "build_csr",
    "csr_from_arrays",
    "csr_snapshot",
    "graph_fingerprint",
    "install_snapshot",
    "GraphStatistics",
    "compute_statistics",
    "bounded_node_set",
    "bounded_subgraph",
    "enumerate_paths",
    "hop_distances",
    "from_networkx",
    "to_networkx",
    "load_json",
    "load_triples",
    "save_json",
    "save_triples",
]
