"""Serialisation of knowledge graphs.

Two formats are supported:

* a JSON document carrying the full property graph (names, types, numeric
  attributes, triples) — lossless round trip;
* a whitespace-separated triple file (``subject predicate object`` per line,
  N-Triples-like) — edges only, for interoperability with triple tooling.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import DatasetError
from repro.kg.graph import KnowledgeGraph

_FORMAT_VERSION = 1


def graph_fingerprint(kg: KnowledgeGraph) -> str:
    """A stable content hash of ``kg``'s *structure* (sha256 hex digest).

    Covers node names, type sets and the full triple list — everything a
    CSR snapshot or a cached plan depends on — but not numeric attributes,
    mirroring the ``structure_version`` / ``attribute_version`` split.
    Unlike ``structure_version`` (a process-local mutation counter), the
    fingerprint survives serialisation: a graph saved with
    :func:`save_json` and reloaded elsewhere hashes identically, which is
    what lets the snapshot store validate an on-disk artefact against a
    freshly loaded graph.
    """
    digest = hashlib.sha256()
    digest.update(b"repro-kg-v1\x00")
    for node_id in kg.nodes():
        node = kg.node(node_id)
        digest.update(node.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update("|".join(sorted(node.types)).encode("utf-8"))
        digest.update(b"\x01")
    digest.update(b"\x02")
    for predicate in kg.predicates:
        digest.update(predicate.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"\x03")
    for subject, predicate_id, obj in kg.triples():
        digest.update(subject.to_bytes(8, "little", signed=True))
        digest.update(predicate_id.to_bytes(8, "little", signed=True))
        digest.update(obj.to_bytes(8, "little", signed=True))
    return digest.hexdigest()


def save_json(kg: KnowledgeGraph, path: str | Path) -> None:
    """Write ``kg`` to ``path`` as a lossless JSON document."""
    document = {
        "format_version": _FORMAT_VERSION,
        "name": kg.name,
        "nodes": [
            {
                "name": node.name,
                "types": sorted(node.types),
                "attributes": dict(node.attributes),
            }
            for node in (kg.node(node_id) for node_id in kg.nodes())
        ],
        "edges": [
            {"subject": edge.subject, "predicate": edge.predicate, "object": edge.object}
            for edge in kg.edges()
        ],
    }
    Path(path).write_text(json.dumps(document, indent=1), encoding="utf-8")


def load_json(path: str | Path) -> KnowledgeGraph:
    """Load a knowledge graph previously written by :func:`save_json`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise DatasetError(f"unsupported KG format version: {version!r}")
    kg = KnowledgeGraph(name=document.get("name", "kg"))
    for node in document["nodes"]:
        kg.add_node(node["name"], types=node["types"], attributes=node.get("attributes", {}))
    for edge in document["edges"]:
        kg.add_edge(int(edge["subject"]), edge["predicate"], int(edge["object"]))
    return kg


def save_triples(kg: KnowledgeGraph, path: str | Path) -> None:
    """Write edges as ``subject<TAB>predicate<TAB>object`` names per line."""
    lines = []
    for edge in kg.edges():
        subject_name = kg.node(edge.subject).name
        object_name = kg.node(edge.object).name
        lines.append(f"{subject_name}\t{edge.predicate}\t{object_name}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_triples(
    path: str | Path,
    *,
    default_type: str = "Entity",
    name: str = "kg",
) -> KnowledgeGraph:
    """Load a triple file, creating nodes with ``default_type`` on first use.

    Attribute-free — use the JSON format when numeric attributes matter.
    """
    kg = KnowledgeGraph(name=name)
    for line_number, raw_line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t") if "\t" in line else line.split()
        if len(parts) != 3:
            raise DatasetError(f"{path}:{line_number}: expected 3 fields, got {len(parts)}")
        subject_name, predicate, object_name = parts
        for node_name in (subject_name, object_name):
            if not kg.has_node_named(node_name):
                kg.add_node(node_name, types=[default_type])
        kg.add_edge(kg.node_by_name(subject_name), predicate, kg.node_by_name(object_name))
    return kg
