"""AQL — a small text language for aggregate queries on knowledge graphs.

The paper assumes query graphs are supplied directly or translated from
keywords / natural language by an upstream component ([23], [24] in its
bibliography).  AQL is this repository's concrete version of that input
layer: a compact, unambiguous text form that covers every query the
engine supports — all five shapes, filters (Definition 6) and GROUP-BY.

Grammar (whitespace-insensitive, keywords case-insensitive)::

    query      :=  aggregate MATCH pattern ("," pattern)*
                   [WHERE condition (AND condition)*]
                   [GROUP BY name [BIN number]]
    aggregate  :=  FUNC "(" (name | "*") ")"
    FUNC       :=  COUNT | SUM | AVG | MAX | MIN
    pattern    :=  specific ("-[" name "]->" node)+
    specific   :=  "(" name ":" types ")"
    node       :=  "(" variable ":" types ")"
    types      :=  name ("|" name)*
    condition  :=  number cmp name cmp number     -- range filter
                |  name cmp number                -- one-sided
                |  number cmp name
    cmp        :=  "<=" | "<" | ">=" | ">"

The first node of each pattern is the paper's *specific node* (name and
types known); every later node is an unknown node described only by its
types.  All patterns must end in the **same variable** — the shared
target of the decomposition-assembly framework (§V-B).

Examples::

    COUNT(*) MATCH (Germany:Country)-[product]->(x:Automobile)

    AVG(price) MATCH (Germany:Country)-[product]->(x:Automobile)
        WHERE 25 <= fuel_economy <= 30

    COUNT(*) MATCH (Spain:Country)-[bornIn]->(x:SoccerPlayer),
                   (FC_Barcelona:SoccerClub)-[playsFor]->(x:SoccerPlayer)

    SUM(transfer_value) MATCH (Spain:Country)-[bornIn]->(x:SoccerPlayer)
        GROUP BY age BIN 5

Names containing characters outside ``[A-Za-z0-9_.]`` can be quoted with
double quotes: ``("Besty Ross":Person)``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.errors import QueryError
from repro.query.aggregate import AggregateFunction, AggregateQuery, Filter, GroupBy
from repro.query.graph import PathQuery, QueryGraph

__all__ = ["ParseError", "parse_query", "format_query"]

_KEYWORDS = frozenset({"MATCH", "WHERE", "AND", "GROUP", "BY", "BIN"})
_FUNCTIONS = frozenset(f.value for f in AggregateFunction)


class ParseError(QueryError):
    """An AQL string could not be parsed; carries the offending position."""

    def __init__(self, message: str, text: str, position: int) -> None:
        line = text.count("\n", 0, position) + 1
        column = position - (text.rfind("\n", 0, position) + 1) + 1
        snippet = text[position : position + 20] or "<end of input>"
        super().__init__(
            f"{message} at line {line}, column {column} (near {snippet!r})"
        )
        self.position = position
        self.line = line
        self.column = column


@dataclass(frozen=True)
class _Token:
    kind: str  # NAME | QUOTED | NUMBER | punctuation kinds below
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<ARROW_OUT>\]->)
  | (?P<ARROW_IN>-\[)
  | (?P<LE><=)
  | (?P<GE>>=)
  | (?P<LT><)
  | (?P<GT>>)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COLON>:)
  | (?P<PIPE>\|)
  | (?P<COMMA>,)
  | (?P<STAR>\*)
  | (?P<NUMBER>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
  | (?P<QUOTED>"(?:[^"\\]|\\.)*")
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unexpected character", text, position)
        kind = match.lastgroup or ""
        if kind != "WS":
            value = match.group()
            if kind == "QUOTED":
                value = re.sub(r"\\(.)", r"\1", value[1:-1])
            tokens.append(_Token(kind, value, position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token-stream helpers ----------------------------------------------
    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        position = token.position if token else len(self._text)
        return ParseError(message, self._text, position)

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", self._text, len(self._text))
        self._index += 1
        return token

    def _expect(self, kind: str, what: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            raise self._error(f"expected {what}")
        return self._advance()

    def _at_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == "NAME"
            and token.value.upper() == keyword
        )

    def _expect_keyword(self, keyword: str) -> None:
        if not self._at_keyword(keyword):
            raise self._error(f"expected keyword {keyword}")
        self._advance()

    def _name(self, what: str) -> str:
        token = self._peek()
        if token is not None and token.kind in ("NAME", "QUOTED"):
            if token.kind == "NAME" and token.value.upper() in _KEYWORDS:
                raise self._error(f"expected {what}, found keyword {token.value!r}")
            return self._advance().value
        raise self._error(f"expected {what}")

    # -- grammar rules ------------------------------------------------------
    def parse(self) -> AggregateQuery:
        """Parse the token stream into an :class:`AggregateQuery`."""
        function, attribute = self._aggregate()
        self._expect_keyword("MATCH")
        components = [self._pattern()]
        while self._peek() is not None and self._peek().kind == "COMMA":  # type: ignore[union-attr]
            self._advance()
            components.append(self._pattern())

        filters: list[Filter] = []
        if self._at_keyword("WHERE"):
            self._advance()
            filters.append(self._condition())
            while self._at_keyword("AND"):
                self._advance()
                filters.append(self._condition())

        group_by: GroupBy | None = None
        if self._at_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            group_attribute = self._name("a GROUP BY attribute")
            bin_width: float | None = None
            if self._at_keyword("BIN"):
                self._advance()
                bin_width = float(self._expect("NUMBER", "a bin width").value)
            group_by = GroupBy(group_attribute, bin_width=bin_width)

        if self._peek() is not None:
            raise self._error("unexpected trailing input")

        query_graph = self._assemble(components)
        return AggregateQuery(
            query=query_graph,
            function=function,
            attribute=attribute,
            filters=tuple(filters),
            group_by=group_by,
        )

    def _aggregate(self) -> tuple[AggregateFunction, str | None]:
        token = self._expect("NAME", "an aggregate function")
        name = token.value.upper()
        if name not in _FUNCTIONS:
            raise ParseError(
                f"unknown aggregate function {token.value!r} "
                f"(expected one of {sorted(_FUNCTIONS)})",
                self._text,
                token.position,
            )
        function = AggregateFunction(name)
        self._expect("LPAREN", "'(' after the aggregate function")
        attribute: str | None
        if self._peek() is not None and self._peek().kind == "STAR":  # type: ignore[union-attr]
            self._advance()
            attribute = None
        else:
            attribute = self._name("an attribute name or '*'")
        self._expect("RPAREN", "')' after the aggregate attribute")
        if function is AggregateFunction.COUNT:
            attribute = None  # COUNT(x) is tolerated and read as COUNT(*)
        elif attribute is None:
            raise self._error(f"{function.value} requires an attribute, not '*'")
        return function, attribute

    def _node(self, what: str) -> tuple[str, frozenset[str]]:
        self._expect("LPAREN", f"'(' opening {what}")
        name = self._name(f"the name of {what}")
        self._expect("COLON", f"':' before the types of {what}")
        types = [self._name("a node type")]
        while self._peek() is not None and self._peek().kind == "PIPE":  # type: ignore[union-attr]
            self._advance()
            types.append(self._name("a node type"))
        self._expect("RPAREN", f"')' closing {what}")
        return name, frozenset(types)

    def _pattern(self) -> tuple[PathQuery, str]:
        """One pattern; returns the component and its target variable."""
        specific_name, specific_types = self._node("the specific node")
        hops: list[tuple[str, frozenset[str]]] = []
        variable = ""
        while self._peek() is not None and self._peek().kind == "ARROW_IN":  # type: ignore[union-attr]
            self._advance()
            predicate = self._name("an edge predicate")
            self._expect("ARROW_OUT", "']->' closing the edge")
            variable, types = self._node("a query node")
            hops.append((predicate, types))
        if not hops:
            raise self._error("a pattern needs at least one -[predicate]-> edge")
        component = PathQuery(
            specific_name=specific_name,
            specific_types=specific_types,
            hops=tuple(hops),
        )
        return component, variable

    def _assemble(
        self, components: list[tuple[PathQuery, str]]
    ) -> QueryGraph:
        target_variables = {variable for _, variable in components}
        if len(target_variables) > 1:
            raise self._error(
                "all patterns must end in the same target variable; got "
                + ", ".join(sorted(target_variables))
            )
        paths = [component for component, _ in components]
        if len(paths) == 1:
            return QueryGraph(components=(paths[0],))
        return QueryGraph.compose(paths)

    def _condition(self) -> Filter:
        """``25 <= attr <= 30``, ``attr <= 30`` or ``25 <= attr``."""
        token = self._peek()
        if token is None:
            raise self._error("expected a filter condition")
        if token.kind == "NUMBER":
            # number cmp name [cmp number]
            left = float(self._advance().value)
            op1 = self._comparator()
            attribute = self._name("a filter attribute")
            lower, upper = self._bound_from(left, op1, before_attribute=True)
            if self._peek() is not None and self._peek().kind in (  # type: ignore[union-attr]
                "LE",
                "LT",
                "GE",
                "GT",
            ):
                op2 = self._comparator()
                right = float(self._expect("NUMBER", "a filter bound").value)
                lower2, upper2 = self._bound_from(right, op2, before_attribute=False)
                if (lower is None) == (lower2 is None):
                    raise self._error(
                        "a range condition must bound the attribute from "
                        "both sides (e.g. 25 <= attr <= 30)"
                    )
                lower = lower if lower is not None else lower2
                upper = upper if upper is not None else upper2
            return Filter(attribute, lower=lower, upper=upper)
        # name cmp number
        attribute = self._name("a filter attribute")
        op = self._comparator()
        value = float(self._expect("NUMBER", "a filter bound").value)
        lower, upper = self._bound_from(value, op, before_attribute=False)
        return Filter(attribute, lower=lower, upper=upper)

    def _comparator(self) -> str:
        token = self._peek()
        if token is None or token.kind not in ("LE", "LT", "GE", "GT"):
            raise self._error("expected a comparison operator (<=, <, >=, >)")
        return self._advance().kind

    @staticmethod
    def _bound_from(
        value: float, op: str, *, before_attribute: bool
    ) -> tuple[float | None, float | None]:
        """Translate one comparison into (lower, upper) filter bounds.

        ``before_attribute`` flips the direction: ``25 <= attr`` is a lower
        bound, ``attr <= 25`` an upper one.  Strict comparisons become
        half-open bounds via the adjacent float, which is exact for the
        inclusive-range :class:`Filter`.
        """
        if before_attribute:
            op = {"LE": "GE", "LT": "GT", "GE": "LE", "GT": "LT"}[op]
        if op == "LE":
            return None, value
        if op == "LT":
            return None, math.nextafter(value, -math.inf)
        if op == "GE":
            return value, None
        return math.nextafter(value, math.inf), None


def parse_query(text: str) -> AggregateQuery:
    """Parse an AQL string into an :class:`AggregateQuery`.

    Raises :class:`ParseError` (a :class:`~repro.errors.QueryError`) with
    line/column information when the text is malformed.
    """
    return _Parser(text).parse()


# ---------------------------------------------------------------------------
# Unparsing
# ---------------------------------------------------------------------------
_SAFE_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*\Z")


def _quote(name: str) -> str:
    if _SAFE_NAME_RE.match(name) and name.upper() not in _KEYWORDS:
        return name
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _format_number(value: float) -> str:
    return f"{value:g}"


def _format_component(component: PathQuery, variable: str) -> str:
    parts = [
        f"({_quote(component.specific_name)}:"
        f"{'|'.join(_quote(t) for t in sorted(component.specific_types))})"
    ]
    for index, (predicate, types) in enumerate(component.hops):
        is_last = index == len(component.hops) - 1
        node_name = variable if is_last else f"n{index + 1}"
        parts.append(
            f"-[{_quote(predicate)}]->"
            f"({node_name}:{'|'.join(_quote(t) for t in sorted(types))})"
        )
    return "".join(parts)


def format_query(aggregate_query: AggregateQuery) -> str:
    """Render an :class:`AggregateQuery` back to parseable AQL text.

    ``parse_query(format_query(q))`` reproduces ``q`` up to the float
    adjustments strict comparisons introduce (the formatter only ever
    emits inclusive bounds, which round-trip exactly).
    """
    function = aggregate_query.function
    attribute = aggregate_query.attribute
    head = f"{function.value}({_quote(attribute) if attribute else '*'})"
    patterns = ", ".join(
        _format_component(component, "x")
        for component in aggregate_query.query.components
    )
    text = f"{head} MATCH {patterns}"
    if aggregate_query.filters:
        conditions = []
        for filter_ in aggregate_query.filters:
            if filter_.lower is not None and filter_.upper is not None:
                conditions.append(
                    f"{_format_number(filter_.lower)} <= {_quote(filter_.attribute)}"
                    f" <= {_format_number(filter_.upper)}"
                )
            elif filter_.lower is not None:
                conditions.append(
                    f"{_quote(filter_.attribute)} >= {_format_number(filter_.lower)}"
                )
            else:
                assert filter_.upper is not None
                conditions.append(
                    f"{_quote(filter_.attribute)} <= {_format_number(filter_.upper)}"
                )
        text += " WHERE " + " AND ".join(conditions)
    if aggregate_query.group_by is not None:
        text += f" GROUP BY {_quote(aggregate_query.group_by.attribute)}"
        if aggregate_query.group_by.bin_width is not None:
            text += f" BIN {_format_number(aggregate_query.group_by.bin_width)}"
    return text
