"""Answer containers shared by samplers, validators and estimators."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CandidateAnswer:
    """A candidate answer (Definition 4): type-matched node + similarity."""

    node_id: int
    similarity: float

    def is_correct(self, tau: float) -> bool:
        """Definition 4 / Table I: the answer is correct when s_i >= tau."""
        return self.similarity >= tau


@dataclass(frozen=True)
class SampledAnswer:
    """One draw of the continuous sampling phase.

    ``probability`` is the answer's stationary visiting probability pi'_i in
    the answer-restricted distribution pi_A — the quantity the
    Horvitz-Thompson-style estimators divide by (Eq. 7-9).  ``route`` keeps
    the intermediate nodes chosen by multi-stage (chain) sampling so that
    validation can check each leg.
    """

    node_id: int
    probability: float
    route: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"sampling probability must be in (0, 1], got {self.probability}"
            )
