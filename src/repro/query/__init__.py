"""Query model: query graphs of all five shapes, aggregates, filters, GROUP-BY.

A query graph is represented as one or more :class:`PathQuery` components
that share the same target node — exactly the decomposition the paper's
"decomposition-assembly" framework (§V-B) operates on.  A single one-hop
component is the paper's *simple* query (Definition 3), a single multi-hop
component is a *chain*, and multiple components form star / cycle / flower
shapes.
"""

from repro.query.aggregate import (
    AggregateFunction,
    AggregateQuery,
    Filter,
    GroupBy,
)
from repro.query.answer import CandidateAnswer, SampledAnswer
from repro.query.graph import PathQuery, QueryGraph, QueryShape
from repro.query.parser import ParseError, format_query, parse_query

__all__ = [
    "AggregateFunction",
    "AggregateQuery",
    "Filter",
    "GroupBy",
    "CandidateAnswer",
    "SampledAnswer",
    "ParseError",
    "PathQuery",
    "QueryGraph",
    "QueryShape",
    "format_query",
    "parse_query",
]
