"""Exact evaluation helpers shared by baselines and ground-truth oracles."""

from __future__ import annotations

import math

from repro.kg.graph import KnowledgeGraph
from repro.query.aggregate import AggregateQuery, exact_aggregate


def is_usable_answer(
    kg: KnowledgeGraph, aggregate_query: AggregateQuery, node_id: int
) -> bool:
    """Filters (§V-A) + attribute availability for attribute aggregates.

    A NaN attribute counts as missing: letting one through would poison
    every downstream sum/mean and the Eq.-12 sizing arithmetic.
    """
    node = kg.node(node_id)
    if not aggregate_query.passes_filters(node):
        return False
    if aggregate_query.function.needs_attribute:
        value = node.attribute(aggregate_query.attribute or "")
        return value is not None and not math.isnan(value)
    return True


def usable_answers(
    kg: KnowledgeGraph, aggregate_query: AggregateQuery, answers: set[int]
) -> set[int]:
    """Subset of ``answers`` passing filters and carrying the attribute."""
    return {
        node_id
        for node_id in answers
        if is_usable_answer(kg, aggregate_query, node_id)
    }


def aggregate_over(
    kg: KnowledgeGraph, aggregate_query: AggregateQuery, answers: set[int]
) -> tuple[float, dict[float, float]]:
    """Exact ``(value, per-group values)`` of ``f_a`` over ``answers``.

    ``answers`` should already be usable (see :func:`usable_answers`).
    For grouped queries the scalar value is the number of groups.
    """
    group_by = aggregate_query.group_by
    if group_by is None:
        values = []
        for node_id in answers:
            value = aggregate_query.value_of(kg.node(node_id))
            if value is not None:
                values.append(value)
        if not values and aggregate_query.function.needs_attribute:
            return 0.0, {}
        return exact_aggregate(aggregate_query.function, values), {}

    partitions: dict[float, list[float]] = {}
    for node_id in answers:
        node = kg.node(node_id)
        key = group_by.key_for(node)
        value = aggregate_query.value_of(node)
        if key is None or value is None:
            continue
        partitions.setdefault(key, []).append(value)
    groups = {
        key: exact_aggregate(aggregate_query.function, values)
        for key, values in partitions.items()
    }
    return float(len(groups)), groups
