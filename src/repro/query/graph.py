"""Query graphs (Definition 3) for all the shapes of Fig. 4.

The representation follows the decomposition-assembly view of §V-B: a query
graph is a set of :class:`PathQuery` components that share one target node.
Each component starts at a *specific* node (name and types known) and walks
a sequence of (predicate, node-types) hops ending at the target (only types
known).  Shapes:

* 1 component, 1 hop            -> SIMPLE  (Definition 3)
* 1 component, >1 hop           -> CHAIN   (§V-B)
* 2 components, both 1 hop      -> CYCLE   (Fig. 4(c))
* >=3 components, <=1 multi-hop -> STAR    (Fig. 4(b))
* anything else                 -> FLOWER  (Fig. 4(d))
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import QueryError


class QueryShape(enum.Enum):
    """The five query-graph shapes studied in the paper."""

    SIMPLE = "simple"
    CHAIN = "chain"
    STAR = "star"
    CYCLE = "cycle"
    FLOWER = "flower"


@dataclass(frozen=True)
class PathQuery:
    """One component: specific node -> hops -> shared target.

    ``hops`` lists ``(predicate, node_types)`` pairs from the specific node
    towards the target; the node types of the final hop are the target's
    types.  A single hop makes this a simple query.
    """

    specific_name: str
    specific_types: frozenset[str]
    hops: tuple[tuple[str, frozenset[str]], ...]

    def __post_init__(self) -> None:
        if not self.specific_name:
            raise QueryError("a path query needs a specific node name")
        if not self.specific_types:
            raise QueryError("the specific node needs at least one type")
        if not self.hops:
            raise QueryError("a path query needs at least one hop")
        for predicate, types in self.hops:
            if not predicate:
                raise QueryError("every hop needs a predicate")
            if not types:
                raise QueryError("every hop needs at least one node type")

    @property
    def num_hops(self) -> int:
        """Number of edges in this path component."""
        return len(self.hops)

    @property
    def is_simple(self) -> bool:
        """True for a one-hop component (Definition 3)."""
        return len(self.hops) == 1

    @property
    def predicates(self) -> tuple[str, ...]:
        """The hop predicates, in order from the specific node."""
        return tuple(predicate for predicate, _ in self.hops)

    @property
    def target_types(self) -> frozenset[str]:
        """Types required of the shared target node."""
        return self.hops[-1][1]

    @property
    def intermediate_types(self) -> tuple[frozenset[str], ...]:
        """Types of the unknown nodes between the specific node and target."""
        return tuple(types for _, types in self.hops[:-1])


@dataclass(frozen=True)
class QueryGraph:
    """A query graph: one or more path components sharing a target."""

    components: tuple[PathQuery, ...]
    shape_override: QueryShape | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.components:
            raise QueryError("a query graph needs at least one component")
        target_types = self.components[0].target_types
        for component in self.components[1:]:
            if component.target_types != target_types:
                raise QueryError(
                    "all components of a query graph must share the target "
                    f"types; got {sorted(target_types)} vs "
                    f"{sorted(component.target_types)}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def simple(
        specific_name: str,
        specific_types: Iterable[str],
        predicate: str,
        target_types: Iterable[str],
    ) -> "QueryGraph":
        """Definition 3: one specific node, one predicate, one target."""
        component = PathQuery(
            specific_name=specific_name,
            specific_types=frozenset(specific_types),
            hops=((predicate, frozenset(target_types)),),
        )
        return QueryGraph(components=(component,))

    @staticmethod
    def chain(
        specific_name: str,
        specific_types: Iterable[str],
        hops: Sequence[tuple[str, Iterable[str]]],
    ) -> "QueryGraph":
        """§V-B: a multi-hop path from the specific node to the target."""
        if len(hops) < 2:
            raise QueryError("a chain query needs at least two hops")
        component = PathQuery(
            specific_name=specific_name,
            specific_types=frozenset(specific_types),
            hops=tuple((predicate, frozenset(types)) for predicate, types in hops),
        )
        return QueryGraph(components=(component,))

    @staticmethod
    def compose(
        components: Sequence[QueryGraph | PathQuery],
        shape: QueryShape | None = None,
    ) -> "QueryGraph":
        """Assemble a star / cycle / flower from simpler queries (§V-B)."""
        flattened: list[PathQuery] = []
        for component in components:
            if isinstance(component, QueryGraph):
                flattened.extend(component.components)
            else:
                flattened.append(component)
        if len(flattened) < 2:
            raise QueryError("composite queries need at least two components")
        return QueryGraph(components=tuple(flattened), shape_override=shape)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def target_types(self) -> frozenset[str]:
        """Types required of the shared target node."""
        return self.components[0].target_types

    @property
    def is_composite(self) -> bool:
        """True when more than one component shares the target."""
        return len(self.components) > 1

    @property
    def num_edges(self) -> int:
        """Total number of query edges across components."""
        return sum(component.num_hops for component in self.components)

    @property
    def shape(self) -> QueryShape:
        """The Fig. 4 shape (override wins over classification)."""
        if self.shape_override is not None:
            return self.shape_override
        return classify_shape(self.components)

    def __str__(self) -> str:
        parts = []
        for component in self.components:
            hops = " -> ".join(
                f"[{predicate}] (*:{'|'.join(sorted(types))})"
                for predicate, types in component.hops
            )
            parts.append(f"({component.specific_name}) -> {hops}")
        return f"{self.shape.value}{{{'; '.join(parts)}}}"


def classify_shape(components: Sequence[PathQuery]) -> QueryShape:
    """Derive the Fig. 4 shape label from the component structure."""
    if len(components) == 1:
        return QueryShape.SIMPLE if components[0].is_simple else QueryShape.CHAIN
    num_chains = sum(1 for component in components if not component.is_simple)
    if len(components) == 2 and num_chains == 0:
        return QueryShape.CYCLE
    if num_chains <= 1:
        return QueryShape.STAR
    return QueryShape.FLOWER
