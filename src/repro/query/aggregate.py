"""Aggregate queries over query graphs (Definition 2, §V-A).

``AQ_G = (Q, f_a)`` pairs a :class:`~repro.query.graph.QueryGraph` with an
aggregate function over a numeric attribute, optionally restricted by range
filters (Definition 6) and partitioned by a GROUP-BY specification.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import QueryError
from repro.kg.graph import Node
from repro.query.graph import QueryGraph


class AggregateFunction(enum.Enum):
    """Supported aggregates; COUNT/SUM/AVG carry accuracy guarantees."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MAX = "MAX"
    MIN = "MIN"

    @property
    def needs_attribute(self) -> bool:
        """True for every function except COUNT."""
        return self is not AggregateFunction.COUNT

    @property
    def has_guarantee(self) -> bool:
        """Extreme functions are supported without CI guarantees (§IV-B1)."""
        return self in (
            AggregateFunction.COUNT,
            AggregateFunction.SUM,
            AggregateFunction.AVG,
        )


@dataclass(frozen=True)
class Filter:
    """Definition 6: ``L <= u.b <= U`` on an answer attribute.

    Either bound may be ``None`` (one-sided ranges).  Answers lacking the
    attribute fail the filter.
    """

    attribute: str
    lower: float | None = None
    upper: float | None = None

    def __post_init__(self) -> None:
        if not self.attribute:
            raise QueryError("a filter needs an attribute name")
        if self.lower is None and self.upper is None:
            raise QueryError("a filter needs at least one bound")
        if self.lower is not None and self.upper is not None and self.lower > self.upper:
            raise QueryError(
                f"filter bounds inverted: {self.lower} > {self.upper}"
            )

    def matches(self, node: Node) -> bool:
        """True when the node's attribute value lies within the bounds."""
        value = node.attribute(self.attribute)
        if value is None or math.isnan(value):
            return False
        if self.lower is not None and value < self.lower:
            return False
        if self.upper is not None and value > self.upper:
            return False
        return True


@dataclass(frozen=True)
class GroupBy:
    """GROUP-BY on the target node (§V-A).

    Two modes:

    * categorical — group key is the raw attribute value (e.g. an interned
      country code);
    * binned — ``bin_width`` partitions a numeric attribute into intervals
      (the paper's "age group" example).
    """

    attribute: str
    bin_width: float | None = None

    def __post_init__(self) -> None:
        if not self.attribute:
            raise QueryError("group-by needs an attribute name")
        if self.bin_width is not None and self.bin_width <= 0:
            raise QueryError("bin_width must be positive")

    def key_for(self, node: Node) -> float | None:
        """The group key for ``node``; ``None`` when the attribute is absent."""
        value = node.attribute(self.attribute)
        if value is None or math.isnan(value):
            return None
        if self.bin_width is None:
            return value
        key = math.floor(value / self.bin_width) * self.bin_width
        if key > value:
            # Tiny negative values can underflow the division to -0.0,
            # rounding the key into the bin above; step down one bin so
            # key <= value always holds.
            key -= self.bin_width
        return key

    def label_for(self, key: float) -> str:
        """Human-readable label of the group keyed by ``key``."""
        if self.bin_width is None:
            return f"{self.attribute}={key:g}"
        return f"{self.attribute}∈[{key:g},{key + self.bin_width:g})"


@dataclass(frozen=True)
class AggregateQuery:
    """An aggregate query ``AQ_G = (Q, f_a)`` with optional filters/grouping."""

    query: QueryGraph
    function: AggregateFunction
    attribute: str | None = None
    filters: tuple[Filter, ...] = field(default_factory=tuple)
    group_by: GroupBy | None = None

    def __post_init__(self) -> None:
        if self.function.needs_attribute and not self.attribute:
            raise QueryError(f"{self.function.value} requires an attribute")
        if not self.function.needs_attribute and self.attribute:
            raise QueryError("COUNT does not take an attribute")

    @property
    def has_filters(self) -> bool:
        """True when at least one filter is attached."""
        return bool(self.filters)

    def passes_filters(self, node: Node) -> bool:
        """§V-A: filters are conjunctive."""
        return all(filter_.matches(node) for filter_ in self.filters)

    def value_of(self, node: Node) -> float | None:
        """The aggregated value contributed by ``node``.

        COUNT contributes 1.0; other functions contribute the attribute
        value (``None`` when the node lacks the attribute).
        """
        if self.function is AggregateFunction.COUNT:
            return 1.0
        return node.attribute(self.attribute or "")

    def describe(self) -> str:
        """One-line human-readable rendering of the query."""
        attribute = self.attribute or "*"
        text = f"{self.function.value}({attribute}) over {self.query}"
        if self.filters:
            conditions = ", ".join(
                f"{f.lower if f.lower is not None else '-inf'}<="
                f"{f.attribute}<={f.upper if f.upper is not None else 'inf'}"
                for f in self.filters
            )
            text += f" WHERE {conditions}"
        if self.group_by is not None:
            text += f" GROUP BY {self.group_by.attribute}"
        return text


def exact_aggregate(
    function: AggregateFunction, values: Sequence[float]
) -> float:
    """Apply ``function`` exactly to ``values`` (used by all exact baselines)."""
    if function is AggregateFunction.COUNT:
        return float(len(values))
    if not values:
        raise QueryError(f"{function.value} of an empty answer set is undefined")
    if function is AggregateFunction.SUM:
        return float(sum(values))
    if function is AggregateFunction.AVG:
        return float(sum(values) / len(values))
    if function is AggregateFunction.MAX:
        return float(max(values))
    if function is AggregateFunction.MIN:
        return float(min(values))
    raise QueryError(f"unsupported aggregate function: {function}")
