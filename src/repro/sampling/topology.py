"""Topology-aware sampling baselines for the Fig. 5(a) ablation.

The paper contrasts its semantic-aware walk with two samplers that only see
graph structure:

* **CNARW** (Li et al., ICDE 2019) — common-neighbour-aware random walk:
  the transition weight to a neighbour shrinks with the common-neighbour
  ratio, accelerating mixing but ignoring predicates entirely.
* **Node2Vec** (Grover & Leskovec, KDD 2016) — a second-order biased walk
  with return/in-out parameters p and q; its visiting distribution is
  estimated empirically by simulating the walk (the distribution of a
  second-order chain is not a simple eigenvector).

Both produce an answer distribution that is oblivious to semantic
similarity, which is precisely why their estimates in Fig. 5(a) are 6-10x
worse than the semantic-aware sampler's.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.kg.graph import KnowledgeGraph
from repro.sampling.scope import SamplingScope
from repro.sampling.transition import TransitionModel
from repro.utils.rng import ensure_rng


def uniform_transition_model(
    kg: KnowledgeGraph, scope: SamplingScope
) -> "SimpleTransitionModel":
    """Classic simple random walk: uniform over in-scope neighbours."""
    return SimpleTransitionModel(kg, scope, mode="uniform")


def cnarw_transition_model(
    kg: KnowledgeGraph, scope: SamplingScope
) -> "SimpleTransitionModel":
    """CNARW-style walk: weight 1 - |N(u) ∩ N(v)| / min(d(u), d(v))."""
    return SimpleTransitionModel(kg, scope, mode="cnarw")


class SimpleTransitionModel(TransitionModel):
    """A topology-only transition model with the same row interface.

    Reuses :class:`TransitionModel`'s storage/solver plumbing but replaces
    the Eq. 5 semantic weights with structural ones.
    """

    def __init__(self, kg: KnowledgeGraph, scope: SamplingScope, mode: str) -> None:
        if mode not in ("uniform", "cnarw"):
            raise SamplingError(f"unknown topology mode {mode!r}")
        self._mode = mode
        self._neighbour_sets: dict[int, set[int]] = {}
        self._kg_ref = kg
        # Note: we bypass TransitionModel.__init__ and build rows directly —
        # the semantic constructor requires an embedding space we do not use.
        self.scope = scope
        self.query_predicate = "<topology>"
        self._index = scope.index_of()
        self._rows = []
        self._build_structural(kg)

    def _neighbours_of(self, node: int) -> set[int]:
        cached = self._neighbour_sets.get(node)
        if cached is None:
            cached = set(self._kg_ref.neighbor_ids(node))
            self._neighbour_sets[node] = cached
        return cached

    def _structural_weight(self, node: int, neighbour: int) -> float:
        if self._mode == "uniform":
            return 1.0
        common = len(self._neighbours_of(node) & self._neighbours_of(neighbour))
        denominator = max(
            1, min(len(self._neighbours_of(node)), len(self._neighbours_of(neighbour)))
        )
        # CNARW: prefer neighbours sharing few common neighbours; keep a
        # positive floor so the chain stays irreducible.
        return max(1.0 - common / denominator, 0.05)

    def _build_structural(self, kg: KnowledgeGraph) -> None:
        from repro.sampling.transition import _Row  # shared row container

        source_index = self._index[self.scope.source]
        for node in self.scope.nodes:
            node_index = self._index[node]
            neighbour_indexes: list[int] = []
            weights: list[float] = []
            edge_ids: list[int] = []
            for edge_id, neighbour in kg.neighbors(node):
                other_index = self._index.get(neighbour)
                if other_index is None:
                    continue
                neighbour_indexes.append(other_index)
                weights.append(self._structural_weight(node, neighbour))
                edge_ids.append(edge_id)
            if node_index == source_index:
                neighbour_indexes.append(source_index)
                weights.append(0.001)
                edge_ids.append(-1)
            if not neighbour_indexes:
                neighbour_indexes.append(node_index)
                weights.append(1.0)
                edge_ids.append(-1)
            weight_array = np.asarray(weights, dtype=np.float64)
            self._rows.append(
                _Row(
                    neighbours=np.asarray(neighbour_indexes, dtype=np.int64),
                    probabilities=weight_array / weight_array.sum(),
                    edge_ids=np.asarray(edge_ids, dtype=np.int64),
                )
            )


def node2vec_visit_distribution(
    kg: KnowledgeGraph,
    scope: SamplingScope,
    *,
    return_parameter: float = 1.0,
    in_out_parameter: float = 2.0,
    steps: int = 20_000,
    burn_in: int = 500,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Empirical visiting distribution of a Node2Vec-style biased walk.

    Second-order bias: stepping from ``prev`` to ``current``, a neighbour
    ``x`` of ``current`` is weighted 1/p when x == prev (return), 1 when x
    is also a neighbour of prev (BFS-ish), and 1/q otherwise (DFS-ish).
    Returns visit frequencies aligned with ``scope.nodes``.
    """
    if return_parameter <= 0 or in_out_parameter <= 0:
        raise SamplingError("node2vec parameters p and q must be positive")
    rng = ensure_rng(seed)
    index = scope.index_of()
    in_scope = scope.distances

    neighbour_cache: dict[int, list[int]] = {}

    def neighbours(node: int) -> list[int]:
        """Neighbour ids of ``node_id`` within the scope."""
        cached = neighbour_cache.get(node)
        if cached is None:
            cached = [nb for nb in kg.neighbor_ids(node) if nb in in_scope]
            neighbour_cache[node] = cached
        return cached

    visits = np.zeros(len(scope.nodes), dtype=np.int64)
    previous = scope.source
    current_neighbours = neighbours(scope.source)
    if not current_neighbours:
        raise SamplingError("the mapping node has no in-scope neighbours")
    current = current_neighbours[int(rng.integers(0, len(current_neighbours)))]

    previous_neighbour_set = set(neighbours(previous))
    for step in range(steps):
        options = neighbours(current)
        if not options:
            current, previous = scope.source, current
            previous_neighbour_set = set(neighbours(previous))
            continue
        weights = np.empty(len(options), dtype=np.float64)
        for position, candidate in enumerate(options):
            if candidate == previous:
                weights[position] = 1.0 / return_parameter
            elif candidate in previous_neighbour_set:
                weights[position] = 1.0
            else:
                weights[position] = 1.0 / in_out_parameter
        weights /= weights.sum()
        pick = int(rng.choice(len(options), p=weights))
        previous, current = current, options[pick]
        previous_neighbour_set = set(neighbours(previous))
        if step >= burn_in:
            visits[index[current]] += 1

    total = visits.sum()
    if total == 0:
        raise SamplingError("node2vec walk recorded no visits; increase steps")
    return visits / total
