"""Topology-aware sampling baselines for the Fig. 5(a) ablation.

The paper contrasts its semantic-aware walk with two samplers that only see
graph structure:

* **CNARW** (Li et al., ICDE 2019) — common-neighbour-aware random walk:
  the transition weight to a neighbour shrinks with the common-neighbour
  ratio, accelerating mixing but ignoring predicates entirely.
* **Node2Vec** (Grover & Leskovec, KDD 2016) — a second-order biased walk
  with return/in-out parameters p and q; its visiting distribution is
  estimated empirically by simulating the walk (the distribution of a
  second-order chain is not a simple eigenvector).

Both produce an answer distribution that is oblivious to semantic
similarity, which is precisely why their estimates in Fig. 5(a) are 6-10x
worse than the semantic-aware sampler's.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.kg.csr import csr_snapshot
from repro.kg.graph import KnowledgeGraph
from repro.semantics import kernels
from repro.sampling.scope import SamplingScope
from repro.sampling.transition import DEFAULT_SELF_LOOP_WEIGHT, TransitionModel
from repro.utils.rng import ensure_rng


def uniform_transition_model(
    kg: KnowledgeGraph, scope: SamplingScope
) -> "SimpleTransitionModel":
    """Classic simple random walk: uniform over in-scope neighbours."""
    return SimpleTransitionModel(kg, scope, mode="uniform")


def cnarw_transition_model(
    kg: KnowledgeGraph, scope: SamplingScope, *, use_kernels: bool = True
) -> "SimpleTransitionModel":
    """CNARW-style walk: weight 1 - |N(u) ∩ N(v)| / min(d(u), d(v))."""
    return SimpleTransitionModel(kg, scope, mode="cnarw", use_kernels=use_kernels)


class SimpleTransitionModel(TransitionModel):
    """A topology-only transition model with the same row interface.

    Reuses :class:`TransitionModel`'s CSR gather and row-installation
    plumbing but replaces the Eq. 5 semantic weights with structural ones.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        scope: SamplingScope,
        mode: str,
        *,
        use_kernels: bool = True,
    ) -> None:
        if mode not in ("uniform", "cnarw"):
            raise SamplingError(f"unknown topology mode {mode!r}")
        self._mode = mode
        self._use_kernels = use_kernels
        # Note: we bypass TransitionModel.__init__ and build rows directly —
        # the semantic constructor requires an embedding space we do not use.
        self.scope = scope
        self.query_predicate = "<topology>"
        self._build_structural(kg)

    def _build_structural(self, kg: KnowledgeGraph) -> None:
        source_index, rows, cols, edge_ids = self._gather_scope_entries(kg)
        if self._mode == "uniform":
            weights = np.ones(len(rows), dtype=np.float64)
        elif self._use_kernels:
            weights = kernels.cnarw_weights(
                csr_snapshot(kg), np.asarray(self.scope.nodes), rows, cols
            )
        else:
            weights = self._cnarw_weights(kg, rows, cols)
        self._install_rows(
            len(self.scope.nodes),
            source_index,
            rows,
            cols,
            weights,
            edge_ids,
            DEFAULT_SELF_LOOP_WEIGHT,
        )

    def _cnarw_weights(
        self, kg: KnowledgeGraph, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """CNARW weight 1 - |N(u) ∩ N(v)| / min(d(u), d(v)) per entry.

        Prefers neighbours sharing few common neighbours; the 0.05 floor
        keeps the chain irreducible.  This is the per-entry Python
        reference; the default build uses the byte-identical sorted-merge
        kernel (:func:`repro.semantics.kernels.cnarw_weights`) — this loop
        stays as the equivalence oracle and the ``use_kernels=False`` path.
        """
        snapshot = csr_snapshot(kg)
        nodes = self.scope.nodes
        neighbour_sets: dict[int, set[int]] = {}

        def neighbours_of(node: int) -> set[int]:
            cached = neighbour_sets.get(node)
            if cached is None:
                cached = set(snapshot.neighbors(node)[1].tolist())
                neighbour_sets[node] = cached
            return cached

        weights = np.empty(len(rows), dtype=np.float64)
        for position in range(len(rows)):
            left = neighbours_of(nodes[int(rows[position])])
            right = neighbours_of(nodes[int(cols[position])])
            common = len(left & right)
            denominator = max(1, min(len(left), len(right)))
            weights[position] = max(1.0 - common / denominator, 0.05)
        return weights


def node2vec_visit_distribution(
    kg: KnowledgeGraph,
    scope: SamplingScope,
    *,
    return_parameter: float = 1.0,
    in_out_parameter: float = 2.0,
    steps: int = 20_000,
    burn_in: int = 500,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Empirical visiting distribution of a Node2Vec-style biased walk.

    Second-order bias: stepping from ``prev`` to ``current``, a neighbour
    ``x`` of ``current`` is weighted 1/p when x == prev (return), 1 when x
    is also a neighbour of prev (BFS-ish), and 1/q otherwise (DFS-ish).
    Returns visit frequencies aligned with ``scope.nodes``.
    """
    if return_parameter <= 0 or in_out_parameter <= 0:
        raise SamplingError("node2vec parameters p and q must be positive")
    rng = ensure_rng(seed)
    index = scope.index_of()
    in_scope = scope.distances

    neighbour_cache: dict[int, list[int]] = {}

    def neighbours(node: int) -> list[int]:
        """Neighbour ids of ``node_id`` within the scope."""
        cached = neighbour_cache.get(node)
        if cached is None:
            cached = [nb for nb in kg.neighbor_ids(node) if nb in in_scope]
            neighbour_cache[node] = cached
        return cached

    visits = np.zeros(len(scope.nodes), dtype=np.int64)
    previous = scope.source
    current_neighbours = neighbours(scope.source)
    if not current_neighbours:
        raise SamplingError("the mapping node has no in-scope neighbours")
    current = current_neighbours[int(rng.integers(0, len(current_neighbours)))]

    previous_neighbour_set = set(neighbours(previous))
    for step in range(steps):
        options = neighbours(current)
        if not options:
            current, previous = scope.source, current
            previous_neighbour_set = set(neighbours(previous))
            continue
        weights = np.empty(len(options), dtype=np.float64)
        for position, candidate in enumerate(options):
            if candidate == previous:
                weights[position] = 1.0 / return_parameter
            elif candidate in previous_neighbour_set:
                weights[position] = 1.0
            else:
                weights[position] = 1.0 / in_out_parameter
        weights /= weights.sum()
        pick = int(rng.choice(len(options), p=weights))
        previous, current = current, options[pick]
        previous_neighbour_set = set(neighbours(previous))
        if step >= burn_in:
            visits[index[current]] += 1

    total = visits.sum()
    if total == 0:
        raise SamplingError("node2vec walk recorded no visits; increase steps")
    return visits / total
