"""Continuous sampling of candidate answers (paper §IV-A2(3), Theorem 1).

After convergence, the stationary distribution over the scope is restricted
to the candidate answers and renormalised (pi'_i = pi_i / sum pi); the
collector then draws answers i.i.d. from that distribution — non-answer
nodes are "ignored" exactly as in the paper.  Each draw carries its pi'_i,
which the Eq. 7-9 estimators divide by.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError
from repro.query.answer import SampledAnswer
from repro.sampling.scope import SamplingScope
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class AnswerDistribution:
    """The answer-restricted stationary distribution pi_A."""

    answers: np.ndarray  # node ids with positive stationary probability
    probabilities: np.ndarray  # pi'_i, sums to 1

    def __post_init__(self) -> None:
        if len(self.answers) != len(self.probabilities):
            raise SamplingError("answers and probabilities must align")
        if len(self.answers) == 0:
            raise SamplingError("no candidate answer has positive probability")
        total = float(self.probabilities.sum())
        if not np.isclose(total, 1.0, atol=1e-8):
            raise SamplingError(f"pi_A must sum to 1, got {total}")

    @property
    def support_size(self) -> int:
        """Number of distinct answers in the support."""
        return len(self.answers)

    def probability_of(self, node_id: int) -> float:
        """The stationary probability pi' of one support entry."""
        matches = np.nonzero(self.answers == node_id)[0]
        if len(matches) == 0:
            return 0.0
        return float(self.probabilities[matches[0]])

    def as_mapping(self) -> dict[int, float]:
        """Answer id -> probability dict view of the distribution."""
        return {
            int(node): float(probability)
            for node, probability in zip(self.answers, self.probabilities)
        }


def restrict_to_answers(
    scope: SamplingScope, stationary: np.ndarray
) -> AnswerDistribution:
    """Extract pi_A from the scope-wide stationary distribution.

    ``stationary`` is aligned with ``scope.nodes``.  Answers whose
    stationary probability is exactly zero are dropped from the support
    (they can never be visited, hence never sampled).
    """
    index = scope.index_of()
    answers: list[int] = []
    raw: list[float] = []
    for node in scope.candidate_answers:
        probability = float(stationary[index[node]])
        if probability > 0.0:
            answers.append(node)
            raw.append(probability)
    if not answers:
        raise SamplingError(
            "the stationary distribution assigns zero mass to every candidate"
        )
    probabilities = np.asarray(raw, dtype=np.float64)
    probabilities = probabilities / probabilities.sum()
    return AnswerDistribution(
        answers=np.asarray(answers, dtype=np.int64), probabilities=probabilities
    )


class AnswerCollector:
    """Draws i.i.d. answer samples from an :class:`AnswerDistribution`."""

    def __init__(
        self,
        distribution: AnswerDistribution,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._distribution = distribution
        self._rng = ensure_rng(seed)

    @property
    def distribution(self) -> AnswerDistribution:
        """The answer distribution being sampled from."""
        return self._distribution

    def collect_indices(self, sample_size: int) -> np.ndarray:
        """Draw ``sample_size`` support indices with replacement from pi_A.

        The engine works in index space: node ids and probabilities are
        recovered by fancy-indexing the distribution's arrays, which keeps
        the per-draw cost at numpy speed.
        """
        if sample_size <= 0:
            raise SamplingError("sample_size must be positive")
        return self._rng.choice(
            len(self._distribution.answers),
            size=sample_size,
            p=self._distribution.probabilities,
        )

    def collect(self, sample_size: int) -> list[SampledAnswer]:
        """Draw ``sample_size`` answers with replacement from pi_A."""
        distribution = self._distribution
        picks = self.collect_indices(sample_size)
        return [
            SampledAnswer(
                node_id=int(distribution.answers[pick]),
                probability=float(distribution.probabilities[pick]),
            )
            for pick in picks
        ]

    def collect_little_samples(
        self, count: int, size_each: int
    ) -> list[list[SampledAnswer]]:
        """``count`` independent little samples for the BLB (§IV-C)."""
        if count <= 0:
            raise SamplingError("count must be positive")
        return [self.collect(size_each) for _ in range(count)]
