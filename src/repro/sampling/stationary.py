"""Stationary distribution of the walk (Eq. 6) via power iteration.

Eq. 6 — ``pi_j = sum_i pi_i p_ij`` — applied repeatedly from the indicator
distribution on the mapping node *is* power iteration on the row-stochastic
matrix P; Lemmas 1-2 (irreducibility + aperiodicity) guarantee convergence
to the unique stationary distribution.  The iteration count doubles as the
paper's walk-step statistic N_ws (reported <= 500 in §IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.sampling.transition import TransitionModel

DEFAULT_TOLERANCE = 1e-10
DEFAULT_MAX_ITERATIONS = 1000


@dataclass(frozen=True)
class StationaryResult:
    """The converged distribution and how hard it was to reach."""

    probabilities: np.ndarray  # aligned with scope.nodes
    iterations: int
    residual: float

    def as_mapping(self, scope_nodes: tuple[int, ...]) -> dict[int, float]:
        """node id -> stationary probability (skips exact zeros)."""
        return {
            node: float(probability)
            for node, probability in zip(scope_nodes, self.probabilities)
            if probability > 0.0
        }


def dense_visiting_array(
    scope_nodes: tuple[int, ...] | np.ndarray,
    probabilities: np.ndarray,
    num_nodes: int,
) -> np.ndarray:
    """Scatter scope-aligned probabilities into a read-only per-node array.

    The validation service consumes visiting probabilities as one dense
    float array over all graph node ids (zero marks nodes outside the
    scope, matching the legacy mapping's "absent = unreachable" rule), so
    membership tests and probability lookups are fancy-indexing instead of
    dict probes.  The array is frozen because query plans share it across
    engines.
    """
    dense = np.zeros(num_nodes, dtype=np.float64)
    dense[np.asarray(scope_nodes, dtype=np.int64)] = probabilities
    dense.setflags(write=False)
    return dense


def stationary_distribution(
    transition: TransitionModel,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    require_convergence: bool = False,
) -> StationaryResult:
    """Iterate ``pi <- pi P`` from the source indicator until stationary.

    Stops when the L1 change between successive iterates drops below
    ``tolerance``.  With ``require_convergence`` the caller opts into a
    :class:`ConvergenceError` on budget exhaustion; by default the best
    iterate is returned (the sampler only needs approximate stationarity).
    """
    # Row-vector iteration pi <- pi P is computed as P^T @ pi with the
    # transpose materialised once; csr matrix-vector products avoid the
    # per-iteration wrapper objects of ``ndarray @ csr``.
    matrix_t = transition.to_sparse().transpose().tocsr()
    size = transition.size
    source_index = transition.scope.index_of()[transition.scope.source]

    pi = np.zeros(size, dtype=np.float64)
    pi[source_index] = 1.0

    residual = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # Lazy-chain iterate: pi <- pi (P + I) / 2.  The lazy chain has the
        # same stationary distribution as P (pi P = pi  <=>  pi (P+I)/2 =
        # pi) but no eigenvalue near -1, so the near-periodic star-shaped
        # neighbourhoods that dominate KG scopes cannot trap the iteration
        # in a period-2 oscillation that masquerades as a fixed point.
        updated = 0.5 * (matrix_t @ pi) + 0.5 * pi
        # Renormalise to wash out floating-point drift; Eq. 6 preserves mass.
        total = updated.sum()
        if total <= 0.0:
            raise ConvergenceError("transition matrix lost all probability mass")
        updated /= total
        residual = float(np.abs(updated - pi).sum())
        pi = updated
        if residual < tolerance:
            break
    else:
        if require_convergence:
            raise ConvergenceError(
                f"power iteration did not converge in {max_iterations} steps "
                f"(residual {residual:.3e})"
            )

    return StationaryResult(probabilities=pi, iterations=iterations, residual=residual)
