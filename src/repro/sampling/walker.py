"""Step-by-step random walker with the walking-with-rejection policy.

The engine computes stationary probabilities by power iteration (see
:mod:`repro.sampling.stationary`); this module implements the paper's
literal §IV-A2(2) walker — pick a uniformly random neighbour, accept it
with probability proportional to its transition weight, repeat — so that
tests can confirm the two views agree (visit frequencies converge to the
power-iteration distribution) and experiments can report empirical
walk-step counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sampling.transition import TransitionModel
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class WalkRecord:
    """Trace of one walk: visited scope indexes and acceptance statistics."""

    visits: np.ndarray  # visit counts per scope index
    steps: int
    rejections: int

    def empirical_distribution(self) -> np.ndarray:
        """Visit frequencies over the walk, normalised to sum to one."""
        total = self.visits.sum()
        if total == 0:
            return self.visits.astype(np.float64)
        return self.visits / total


class RandomWalker:
    """Simulates the walking-with-rejection Markov chain."""

    def __init__(
        self,
        transition: TransitionModel,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._transition = transition
        self._rng = ensure_rng(seed)

    def walk(
        self,
        steps: int,
        *,
        burn_in: int = 0,
        start_index: int | None = None,
    ) -> WalkRecord:
        """Run ``steps`` accepted moves, counting visits after ``burn_in``.

        Rejection loop: a uniformly random neighbour ``uj`` of the current
        node ``ui`` is accepted with probability ``p_ij / max_j p_ij``
        (normalising by the row maximum keeps acceptance rates usable while
        preserving the target transition distribution).
        """
        transition = self._transition
        if start_index is None:
            start_index = transition.scope.index_of()[transition.scope.source]
        visits = np.zeros(transition.size, dtype=np.int64)
        rejections = 0
        current = start_index

        for step in range(steps):
            neighbours, probabilities = transition.row(current)
            if len(neighbours) == 1:
                chosen = int(neighbours[0])
            else:
                ceiling = float(probabilities.max())
                while True:
                    pick = int(self._rng.integers(0, len(neighbours)))
                    # Accept with probability proportional to the transition
                    # weight; uniform proposal x this acceptance = Eq. 5.
                    if self._rng.random() <= probabilities[pick] / ceiling:
                        chosen = int(neighbours[pick])
                        break
                    rejections += 1
            current = chosen
            if step >= burn_in:
                visits[current] += 1

        return WalkRecord(visits=visits, steps=steps, rejections=rejections)
