"""Seed (pure-Python) S1 implementations, kept as reference oracles.

These are verbatim ports of the pre-CSR hot path — per-edge Python loops
over ``kg.neighbors`` tuples and string-keyed similarity lookups.  They are
no longer called by the engine; they exist so that

* the equivalence tests can pin the vectorised kernels (scope BFS, Eq. 5
  transition assembly, strength closed form) to the original semantics, and
* ``benchmarks/bench_perf_hotpath.py`` can report honest before/after
  timings against the exact seed implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import SamplingError
from repro.kg.graph import KnowledgeGraph
from repro.sampling.scope import SamplingScope
from repro.semantics.similarity import SIMILARITY_FLOOR, clamp_similarity


def hop_distances_python(
    kg: KnowledgeGraph, source: int, max_hops: int
) -> dict[int, int]:
    """Seed BFS: dict-and-deque traversal over adjacency tuple lists."""
    if max_hops < 0:
        raise ValueError("max_hops must be >= 0")
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        depth = distances[current]
        if depth == max_hops:
            continue
        for _edge_id, neighbour in kg.neighbors(current):
            if neighbour not in distances:
                distances[neighbour] = depth + 1
                frontier.append(neighbour)
    return distances


def build_scope_python(
    kg: KnowledgeGraph,
    source: int,
    n_bound: int,
    target_types: frozenset[str],
) -> SamplingScope:
    """Seed scope build: BFS dict + per-node ``shares_type_with`` filtering."""
    if n_bound < 1:
        raise SamplingError("n_bound must be >= 1")
    distances = hop_distances_python(kg, source, n_bound)
    ordered_nodes = tuple(sorted(distances, key=lambda node: (distances[node], node)))
    candidates = tuple(
        node
        for node in ordered_nodes
        if node != source and kg.node(node).shares_type_with(target_types)
    )
    return SamplingScope(
        source=source,
        n_bound=n_bound,
        distances=distances,
        nodes=ordered_nodes,
        candidate_answers=candidates,
    )


@dataclass(frozen=True)
class ReferenceRow:
    """One state's row of the seed transition matrix."""

    neighbours: np.ndarray  # dense scope indexes
    probabilities: np.ndarray
    edge_ids: np.ndarray


class ReferenceTransitionModel:
    """The seed per-edge Eq. 5 assembly, row dataclass per node and all."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        scope: SamplingScope,
        space: PredicateVectorSpace,
        query_predicate: str,
        *,
        self_loop_weight: float = 0.001,
        similarity_floor: float = SIMILARITY_FLOOR,
    ) -> None:
        if self_loop_weight <= 0:
            raise SamplingError("self_loop_weight must be positive (Lemma 2)")
        self.scope = scope
        self.query_predicate = query_predicate
        self._index = scope.index_of()
        self._rows: list[ReferenceRow] = []
        self._build(kg, space, self_loop_weight, similarity_floor)

    def _build(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        self_loop_weight: float,
        similarity_floor: float,
    ) -> None:
        source_index = self._index[self.scope.source]
        for node in self.scope.nodes:
            node_index = self._index[node]
            neighbour_indexes: list[int] = []
            weights: list[float] = []
            edge_ids: list[int] = []
            for edge_id, neighbour in kg.neighbors(node):
                other_index = self._index.get(neighbour)
                if other_index is None:
                    continue  # neighbour outside the n-bounded scope
                predicate = kg.predicate_of(edge_id)
                weight = clamp_similarity(
                    space.similarity(predicate, self.query_predicate),
                    similarity_floor,
                )
                neighbour_indexes.append(other_index)
                weights.append(weight)
                edge_ids.append(edge_id)
            if node_index == source_index:
                neighbour_indexes.append(source_index)
                weights.append(self_loop_weight)
                edge_ids.append(-1)
            if not neighbour_indexes:
                neighbour_indexes.append(node_index)
                weights.append(1.0)
                edge_ids.append(-1)
            weight_array = np.asarray(weights, dtype=np.float64)
            probabilities = weight_array / weight_array.sum()
            self._rows.append(
                ReferenceRow(
                    neighbours=np.asarray(neighbour_indexes, dtype=np.int64),
                    probabilities=probabilities,
                    edge_ids=np.asarray(edge_ids, dtype=np.int64),
                )
            )

    @property
    def size(self) -> int:
        """Number of states (scope nodes) in the chain."""
        return len(self._rows)

    def row(self, scope_index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbour_indexes, probabilities)`` for one scope node."""
        row = self._rows[scope_index]
        return row.neighbours, row.probabilities

    def row_edges(self, scope_index: int) -> np.ndarray:
        """Edge ids of one state's row (-1 for synthetic self-loops)."""
        return self._rows[scope_index].edge_ids

    def to_sparse(self) -> sparse.csr_matrix:
        """The full row-stochastic matrix P as a CSR matrix."""
        indptr = [0]
        indices: list[np.ndarray] = []
        data: list[np.ndarray] = []
        for row in self._rows:
            indices.append(row.neighbours)
            data.append(row.probabilities)
            indptr.append(indptr[-1] + len(row.neighbours))
        return sparse.csr_matrix(
            (
                np.concatenate(data) if data else np.empty(0),
                np.concatenate(indices) if indices else np.empty(0, dtype=np.int64),
                np.asarray(indptr, dtype=np.int64),
            ),
            shape=(self.size, self.size),
        )


def strength_distribution_python(
    kg: KnowledgeGraph,
    scope: SamplingScope,
    edge_weights: np.ndarray,
    *,
    self_loop_weight: float = 0.001,
) -> np.ndarray:
    """Seed closed-form stationary distribution: per-edge Python loop."""
    in_scope = scope.distances
    strengths = np.zeros(len(scope.nodes), dtype=np.float64)
    for position, node in enumerate(scope.nodes):
        total = 0.0
        for edge_id, neighbour in kg.neighbors(node):
            if neighbour in in_scope:
                total += edge_weights[edge_id]
        strengths[position] = total
    source_position = scope.index_of()[scope.source]
    strengths[source_position] += self_loop_weight
    total_strength = strengths.sum()
    if total_strength <= 0.0:
        raise SamplingError("scope has no positively weighted edges")
    return strengths / total_strength
