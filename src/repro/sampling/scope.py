"""The n-bounded sampling scope (paper §IV-A2).

The random walk is restricted to nodes within ``n`` hops of the mapping
node ``us`` — the induced subgraph G'.  The scope also pre-computes the
candidate answer set A (Definition 4: nodes in G' sharing a type with the
query target), which the collector, estimators and SSB all consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MappingNodeNotFoundError, SamplingError
from repro.kg.csr import csr_snapshot
from repro.kg.graph import KnowledgeGraph


@dataclass(frozen=True)
class SamplingScope:
    """The n-bounded subgraph around one mapping node, plus its candidates."""

    source: int
    n_bound: int
    #: node id -> hop distance from the source, for every node in G'
    distances: dict[int, int] = field(repr=False)
    #: scope nodes in a fixed order (source first, then BFS discovery order)
    nodes: tuple[int, ...] = field(repr=False)
    #: candidate answers A: scope nodes type-compatible with the target
    candidate_answers: tuple[int, ...] = field(repr=False)

    @property
    def size(self) -> int:
        """Number of nodes inside the scope."""
        return len(self.nodes)

    @property
    def num_candidates(self) -> int:
        """Number of candidate answers inside the scope."""
        return len(self.candidate_answers)

    def contains(self, node_id: int) -> bool:
        """True when ``node_id`` lies inside the scope."""
        return node_id in self.distances

    def index_of(self) -> dict[int, int]:
        """node id -> dense index within :attr:`nodes` (built on demand)."""
        return {node: index for index, node in enumerate(self.nodes)}


def resolve_mapping_node(
    kg: KnowledgeGraph, specific_name: str, specific_types: frozenset[str]
) -> int:
    """Find ``us`` for the query's specific node (Definition 5, cond. 1).

    The KG is assumed entity-disambiguated, so the name lookup is unique;
    the type intersection must also be non-empty.
    """
    if not kg.has_node_named(specific_name):
        raise MappingNodeNotFoundError(f"no entity named {specific_name!r} in the KG")
    node_id = kg.node_by_name(specific_name)
    node = kg.node(node_id)
    if not node.shares_type_with(specific_types):
        raise MappingNodeNotFoundError(
            f"entity {specific_name!r} has types {sorted(node.types)}, "
            f"none of the required {sorted(specific_types)}"
        )
    return node_id


def build_scope(
    kg: KnowledgeGraph,
    source: int,
    n_bound: int,
    target_types: frozenset[str],
) -> SamplingScope:
    """BFS the n-bounded subgraph and collect candidate answers.

    Candidates exclude the source itself (an answer entity is distinct from
    the specific entity in Definition 3's query graphs).  Both the BFS and
    the type filtering run on the graph's CSR snapshot: distances come from
    the frontier-array BFS, candidate selection is one boolean gather over
    the node x type membership bitmask.
    """
    if n_bound < 1:
        raise SamplingError("n_bound must be >= 1")
    snapshot = csr_snapshot(kg)
    distance_array = snapshot.hop_distance_array(source, n_bound)
    reached = np.flatnonzero(distance_array >= 0)
    # (distance, node id) order: ``reached`` is already ascending, so a
    # stable sort on distance reproduces the seed's lexicographic order.
    ordered = reached[np.argsort(distance_array[reached], kind="stable")]
    candidate_mask = snapshot.type_mask(target_types)[ordered]
    candidate_mask &= ordered != source
    distances = dict(zip(reached.tolist(), distance_array[reached].tolist()))
    return SamplingScope(
        source=source,
        n_bound=n_bound,
        distances=distances,
        nodes=tuple(ordered.tolist()),
        candidate_answers=tuple(ordered[candidate_mask].tolist()),
    )
