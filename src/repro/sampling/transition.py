"""Transition matrix of the semantic-aware random walk (Eq. 5).

For every scope node ``ui`` the probability of moving to neighbour ``uj``
is proportional to the predicate similarity of the connecting edge to the
query predicate.  The mapping node gets a small self-loop (weight 0.001 by
default) which makes the chain aperiodic (Lemma 2); clamping similarities
to a positive floor keeps it irreducible within the scope (Lemma 1).

The matrix is assembled in one vectorised pass over the graph's CSR
snapshot: gather the scope nodes' adjacency, drop out-of-scope endpoints,
index the query predicate's dense similarity row by edge predicate id,
clamp, and row-normalise with ``np.add.reduceat``.  The result is stored
directly as CSR arrays (``indptr`` / ``neighbours`` / ``probabilities`` /
``edge_ids``), so :meth:`TransitionModel.to_sparse` is a wrap rather than a
concatenation and :meth:`TransitionModel.row` returns zero-copy views.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import SamplingError
from repro.kg.csr import csr_snapshot
from repro.kg.graph import KnowledgeGraph
from repro.sampling.scope import SamplingScope
from repro.semantics.similarity import SIMILARITY_FLOOR, require_known_predicates

DEFAULT_SELF_LOOP_WEIGHT = 0.001


class TransitionModel:
    """Row-compressed transition probabilities over a sampling scope."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        scope: SamplingScope,
        space: PredicateVectorSpace,
        query_predicate: str,
        *,
        self_loop_weight: float = DEFAULT_SELF_LOOP_WEIGHT,
        similarity_floor: float = SIMILARITY_FLOOR,
    ) -> None:
        if self_loop_weight <= 0:
            raise SamplingError("self_loop_weight must be positive (Lemma 2)")
        self.scope = scope
        self.query_predicate = query_predicate
        self._build(kg, space, self_loop_weight, similarity_floor)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _gather_scope_entries(
        self, kg: KnowledgeGraph
    ) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """In-scope adjacency entries ``(source_index, rows, cols, edge_ids)``.

        ``rows``/``cols`` are dense scope indexes; entries keep per-node
        adjacency order and ``rows`` is non-decreasing.
        """
        positions, rows, cols, edge_ids = csr_snapshot(kg).gather_within(
            np.asarray(self.scope.nodes, dtype=np.int64)
        )
        return int(positions[self.scope.source]), rows, cols, edge_ids

    def _build(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        self_loop_weight: float,
        similarity_floor: float,
    ) -> None:
        source_index, rows, cols, edge_ids = self._gather_scope_entries(kg)
        entry_predicate_ids = csr_snapshot(kg).edge_predicate_ids[edge_ids]
        similarity_row = space.known_similarity_row(self.query_predicate, kg.predicates)
        weights = np.clip(similarity_row, similarity_floor, 1.0)[entry_predicate_ids]
        require_known_predicates(kg, space, entry_predicate_ids, weights)
        self._install_rows(
            len(self.scope.nodes),
            source_index,
            rows,
            cols,
            weights,
            edge_ids,
            self_loop_weight,
        )

    def _install_rows(
        self,
        size: int,
        source_index: int,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray,
        edge_ids: np.ndarray,
        self_loop_weight: float,
    ) -> None:
        """Append the Lemma-2 self-loops, row-normalise, store CSR arrays.

        ``rows`` must be non-decreasing (per-node adjacency order).  The
        mapping node always gains an aperiodicity self-loop at the end of
        its row; isolated scope nodes (possible when the n-bound splits
        bridges) get a unit self-loop so every row stays stochastic.  Both
        synthetic entries carry edge id -1, as in the seed implementation.
        """
        counts = np.bincount(rows, minlength=size)
        extras = np.zeros(size, dtype=np.int64)
        extras[source_index] = 1
        isolated = counts == 0
        isolated[source_index] = False
        extras[isolated] = 1
        final_counts = counts + extras

        indptr = np.zeros(size + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(final_counts)
        total = int(indptr[-1])
        out_cols = np.empty(total, dtype=np.int64)
        out_weights = np.empty(total, dtype=np.float64)
        out_edge_ids = np.empty(total, dtype=np.int64)

        # Base entries land at their row start plus their within-row rank.
        base_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        positions = indptr[rows] + (
            np.arange(len(rows), dtype=np.int64) - base_starts[rows]
        )
        out_cols[positions] = cols
        out_weights[positions] = weights
        out_edge_ids[positions] = edge_ids

        # Synthetic self-loops occupy the last slot of their rows.
        extra_rows = np.flatnonzero(extras)
        extra_positions = indptr[extra_rows + 1] - 1
        out_cols[extra_positions] = extra_rows
        out_weights[extra_positions] = np.where(
            extra_rows == source_index, self_loop_weight, 1.0
        )
        out_edge_ids[extra_positions] = -1

        row_sums = np.add.reduceat(out_weights, indptr[:-1])
        out_weights /= np.repeat(row_sums, final_counts)

        self._indptr = indptr
        self._neighbours = out_cols
        self._probabilities = out_weights
        self._edge_ids = out_edge_ids

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of states (scope nodes) in the chain."""
        return len(self._indptr) - 1

    def row(self, scope_index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbour_indexes, probabilities)`` for one scope node."""
        start, end = self._indptr[scope_index], self._indptr[scope_index + 1]
        return self._neighbours[start:end], self._probabilities[start:end]

    def row_edges(self, scope_index: int) -> np.ndarray:
        """Edge ids of one state's row (-1 for synthetic self-loops)."""
        start, end = self._indptr[scope_index], self._indptr[scope_index + 1]
        return self._edge_ids[start:end]

    def probability(self, from_index: int, to_index: int) -> float:
        """p_ij between two scope indexes (0.0 when there is no edge)."""
        neighbours, probabilities = self.row(from_index)
        matches = neighbours == to_index
        if not np.any(matches):
            return 0.0
        return float(probabilities[matches].sum())

    def to_sparse(self) -> sparse.csr_matrix:
        """The full row-stochastic matrix P as a CSR matrix.

        The internal storage already is CSR, so this is a wrap of copies
        (copies so scipy's in-place canonicalisations cannot corrupt the
        model's own arrays).
        """
        return sparse.csr_matrix(
            (
                self._probabilities.copy(),
                self._neighbours.copy(),
                self._indptr.copy(),
            ),
            shape=(self.size, self.size),
        )

    def validate_stochastic(self, atol: float = 1e-9) -> bool:
        """True when every row sums to one (Markov-chain property)."""
        row_sums = np.add.reduceat(self._probabilities, self._indptr[:-1])
        return bool(np.all(np.abs(row_sums - 1.0) <= atol))
