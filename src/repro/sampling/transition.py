"""Transition matrix of the semantic-aware random walk (Eq. 5).

For every scope node ``ui`` the probability of moving to neighbour ``uj``
is proportional to the predicate similarity of the connecting edge to the
query predicate.  The mapping node gets a small self-loop (weight 0.001 by
default) which makes the chain aperiodic (Lemma 2); clamping similarities
to a positive floor keeps it irreducible within the scope (Lemma 1).

The matrix is stored row-compressed (one neighbour/probability array pair
per node) and can be exported as a ``scipy.sparse.csr_matrix`` for the
power-iteration solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import SamplingError
from repro.kg.graph import KnowledgeGraph
from repro.sampling.scope import SamplingScope
from repro.semantics.similarity import SIMILARITY_FLOOR, clamp_similarity

DEFAULT_SELF_LOOP_WEIGHT = 0.001


@dataclass(frozen=True)
class _Row:
    neighbours: np.ndarray  # dense scope indexes
    probabilities: np.ndarray
    edge_ids: np.ndarray


class TransitionModel:
    """Row-compressed transition probabilities over a sampling scope."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        scope: SamplingScope,
        space: PredicateVectorSpace,
        query_predicate: str,
        *,
        self_loop_weight: float = DEFAULT_SELF_LOOP_WEIGHT,
        similarity_floor: float = SIMILARITY_FLOOR,
    ) -> None:
        if self_loop_weight <= 0:
            raise SamplingError("self_loop_weight must be positive (Lemma 2)")
        self.scope = scope
        self.query_predicate = query_predicate
        self._index = scope.index_of()
        self._rows: list[_Row] = []
        self._build(kg, space, self_loop_weight, similarity_floor)

    def _build(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        self_loop_weight: float,
        similarity_floor: float,
    ) -> None:
        source_index = self._index[self.scope.source]
        for node in self.scope.nodes:
            node_index = self._index[node]
            neighbour_indexes: list[int] = []
            weights: list[float] = []
            edge_ids: list[int] = []
            for edge_id, neighbour in kg.neighbors(node):
                other_index = self._index.get(neighbour)
                if other_index is None:
                    continue  # neighbour outside the n-bounded scope
                predicate = kg.predicate_of(edge_id)
                weight = clamp_similarity(
                    space.similarity(predicate, self.query_predicate),
                    similarity_floor,
                )
                neighbour_indexes.append(other_index)
                weights.append(weight)
                edge_ids.append(edge_id)
            if node_index == source_index:
                # Aperiodicity fix: a tiny self-loop on the mapping node.
                neighbour_indexes.append(source_index)
                weights.append(self_loop_weight)
                edge_ids.append(-1)
            if not neighbour_indexes:
                # Isolated scope node (possible when n_bound splits bridges):
                # park the walker with a self-loop so rows stay stochastic.
                neighbour_indexes.append(node_index)
                weights.append(1.0)
                edge_ids.append(-1)
            weight_array = np.asarray(weights, dtype=np.float64)
            probabilities = weight_array / weight_array.sum()
            self._rows.append(
                _Row(
                    neighbours=np.asarray(neighbour_indexes, dtype=np.int64),
                    probabilities=probabilities,
                    edge_ids=np.asarray(edge_ids, dtype=np.int64),
                )
            )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of states (scope nodes) in the chain."""
        return len(self._rows)

    def row(self, scope_index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbour_indexes, probabilities)`` for one scope node."""
        row = self._rows[scope_index]
        return row.neighbours, row.probabilities

    def row_edges(self, scope_index: int) -> np.ndarray:
        """(edge_ids, neighbours, probabilities) of one state's row."""
        return self._rows[scope_index].edge_ids

    def probability(self, from_index: int, to_index: int) -> float:
        """p_ij between two scope indexes (0.0 when there is no edge)."""
        row = self._rows[from_index]
        matches = row.neighbours == to_index
        if not np.any(matches):
            return 0.0
        return float(row.probabilities[matches].sum())

    def to_sparse(self) -> sparse.csr_matrix:
        """The full row-stochastic matrix P as a CSR matrix."""
        indptr = [0]
        indices: list[np.ndarray] = []
        data: list[np.ndarray] = []
        for row in self._rows:
            indices.append(row.neighbours)
            data.append(row.probabilities)
            indptr.append(indptr[-1] + len(row.neighbours))
        return sparse.csr_matrix(
            (
                np.concatenate(data) if data else np.empty(0),
                np.concatenate(indices) if indices else np.empty(0, dtype=np.int64),
                np.asarray(indptr, dtype=np.int64),
            ),
            shape=(self.size, self.size),
        )

    def validate_stochastic(self, atol: float = 1e-9) -> bool:
        """True when every row sums to one (Markov-chain property)."""
        return all(
            abs(float(row.probabilities.sum()) - 1.0) <= atol for row in self._rows
        )
