"""Closed-form stationary distributions for the reversible walk.

The Eq. 5 transition matrix is a random walk on an undirected graph with
symmetric edge weights (each edge's predicate similarity to the query
predicate), so the chain is *reversible* and its stationary distribution is
proportional to node strength — the sum of incident in-scope edge weights:

    pi(u)  =  s(u) / sum_v s(v),      s(u) = sum_{e=(u,v), v in scope} w(e)

This module computes that closed form directly.  It is mathematically
identical to running Eq. 6 power iteration to convergence (tests assert the
agreement) but costs one pass over the scope's edges — which is what makes
the per-intermediate stage walks of chain queries (§V-B) affordable.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import SamplingError
from repro.kg.csr import csr_snapshot
from repro.kg.graph import KnowledgeGraph
from repro.sampling.scope import SamplingScope
from repro.semantics.similarity import SIMILARITY_FLOOR, require_known_predicates


class PredicateEdgeWeights:
    """Per-query-predicate edge weight arrays, cached by predicate name."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        *,
        floor: float = SIMILARITY_FLOOR,
    ) -> None:
        self._kg = kg
        self._space = space
        self.floor = floor
        self._edge_predicate_ids = kg.edge_predicate_ids()
        self._cache: dict[str, np.ndarray] = {}

    def weights(self, query_predicate: str) -> np.ndarray:
        """Clamped similarity of every edge's predicate to the query's.

        The dense similarity row (one matmul, cached in the space) is
        clamped into [floor, 1] and scattered to edges by predicate id;
        an edge whose predicate the embedding does not cover raises
        ``EmbeddingError``.
        """
        cached = self._cache.get(query_predicate)
        if cached is not None:
            return cached
        per_predicate = np.clip(
            self._space.known_similarity_row(query_predicate, self._kg.predicates),
            self.floor,
            1.0,
        )
        weights = per_predicate[self._edge_predicate_ids]
        require_known_predicates(
            self._kg, self._space, self._edge_predicate_ids, weights
        )
        self._cache[query_predicate] = weights
        return weights


def strength_distribution(
    kg: KnowledgeGraph,
    scope: SamplingScope,
    edge_weights: np.ndarray,
    *,
    self_loop_weight: float = 0.001,
) -> np.ndarray:
    """Stationary probabilities over ``scope.nodes`` via node strengths.

    ``edge_weights`` is the per-edge weight array for the query predicate
    (see :class:`PredicateEdgeWeights`).  The mapping node's aperiodicity
    self-loop contributes ``self_loop_weight`` to its strength, matching
    :class:`~repro.sampling.transition.TransitionModel` exactly.  Strengths
    are accumulated in one weighted bincount over the CSR adjacency gather.
    """
    nodes = np.asarray(scope.nodes, dtype=np.int64)
    positions, rows, _cols, edge_ids = csr_snapshot(kg).gather_within(nodes)
    strengths = np.bincount(
        rows, weights=edge_weights[edge_ids], minlength=len(nodes)
    )
    source_position = int(positions[scope.source])
    strengths[source_position] += self_loop_weight
    total_strength = strengths.sum()
    if total_strength <= 0.0:
        raise SamplingError("scope has no positively weighted edges")
    return strengths / total_strength
