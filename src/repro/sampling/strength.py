"""Closed-form stationary distributions for the reversible walk.

The Eq. 5 transition matrix is a random walk on an undirected graph with
symmetric edge weights (each edge's predicate similarity to the query
predicate), so the chain is *reversible* and its stationary distribution is
proportional to node strength — the sum of incident in-scope edge weights:

    pi(u)  =  s(u) / sum_v s(v),      s(u) = sum_{e=(u,v), v in scope} w(e)

This module computes that closed form directly.  It is mathematically
identical to running Eq. 6 power iteration to convergence (tests assert the
agreement) but costs one pass over the scope's edges — which is what makes
the per-intermediate stage walks of chain queries (§V-B) affordable.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import SamplingError
from repro.kg.graph import KnowledgeGraph
from repro.sampling.scope import SamplingScope
from repro.semantics.similarity import SIMILARITY_FLOOR, clamp_similarity


class PredicateEdgeWeights:
    """Per-query-predicate edge weight arrays, cached by predicate name."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        *,
        floor: float = SIMILARITY_FLOOR,
    ) -> None:
        self._kg = kg
        self._space = space
        self.floor = floor
        self._edge_predicate_ids = kg.edge_predicate_ids()
        self._cache: dict[str, np.ndarray] = {}

    def weights(self, query_predicate: str) -> np.ndarray:
        """Clamped similarity of every edge's predicate to the query's."""
        cached = self._cache.get(query_predicate)
        if cached is not None:
            return cached
        per_predicate = np.array(
            [
                clamp_similarity(
                    self._space.similarity(name, query_predicate), self.floor
                )
                for name in self._kg.predicates
            ],
            dtype=np.float64,
        )
        weights = per_predicate[self._edge_predicate_ids]
        self._cache[query_predicate] = weights
        return weights


def strength_distribution(
    kg: KnowledgeGraph,
    scope: SamplingScope,
    edge_weights: np.ndarray,
    *,
    self_loop_weight: float = 0.001,
) -> np.ndarray:
    """Stationary probabilities over ``scope.nodes`` via node strengths.

    ``edge_weights`` is the per-edge weight array for the query predicate
    (see :class:`PredicateEdgeWeights`).  The mapping node's aperiodicity
    self-loop contributes ``self_loop_weight`` to its strength, matching
    :class:`~repro.sampling.transition.TransitionModel` exactly.
    """
    in_scope = scope.distances
    strengths = np.zeros(len(scope.nodes), dtype=np.float64)
    for position, node in enumerate(scope.nodes):
        total = 0.0
        for edge_id, neighbour in kg.neighbors(node):
            if neighbour in in_scope:
                total += edge_weights[edge_id]
        strengths[position] = total
    source_position = scope.index_of()[scope.source]
    strengths[source_position] += self_loop_weight
    total_strength = strengths.sum()
    if total_strength <= 0.0:
        raise SamplingError("scope has no positively weighted edges")
    return strengths / total_strength
