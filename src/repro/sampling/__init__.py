"""Semantic-aware random-walk sampling (paper §IV-A) plus baselines.

Pipeline: :class:`SamplingScope` bounds the walk to the n-hop neighbourhood
of the mapping node; :class:`TransitionModel` builds the Eq. 5 transition
probabilities from predicate similarities; :func:`stationary_distribution`
runs Eq. 6 (power iteration) to convergence; :class:`AnswerCollector` draws
the i.i.d. answer sample of Theorem 1.  :mod:`~repro.sampling.topology`
contributes the CNARW / Node2Vec comparison samplers of Fig. 5(a), and
:mod:`~repro.sampling.chain` the two-stage sampler for chain queries (§V-B).
"""

from repro.sampling.chain import ChainSampler
from repro.sampling.collector import AnswerCollector, AnswerDistribution
from repro.sampling.scope import SamplingScope, build_scope
from repro.sampling.stationary import StationaryResult, stationary_distribution
from repro.sampling.topology import (
    cnarw_transition_model,
    node2vec_visit_distribution,
    uniform_transition_model,
)
from repro.sampling.transition import TransitionModel
from repro.sampling.walker import RandomWalker, WalkRecord

__all__ = [
    "SamplingScope",
    "build_scope",
    "TransitionModel",
    "StationaryResult",
    "stationary_distribution",
    "AnswerCollector",
    "AnswerDistribution",
    "ChainSampler",
    "RandomWalker",
    "WalkRecord",
    "cnarw_transition_model",
    "node2vec_visit_distribution",
    "uniform_transition_model",
]
