"""Two-stage sampling for chain-shaped queries (paper §V-B).

Stage 1 runs the semantic-aware walk from the specific entity with the
first query predicate and keeps intermediate entities of the right type;
stage 2 runs one walk *per intermediate* with the next predicate.  A final
answer reached via intermediate ``ui`` has probability
``pi' = pi'_i * pi'_(j|i)`` and duplicated answers accumulate their routes'
probabilities — exactly the paper's composition rule (their sum is 1).

For tractability the number of expanded intermediates is capped at the top
``max_intermediates`` by stationary probability (re-normalised); the cap is
recorded so experiments can report it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.predicate_space import PredicateVectorSpace
from repro.errors import SamplingError
from repro.kg.graph import KnowledgeGraph
from repro.query.answer import SampledAnswer
from repro.query.graph import PathQuery
from repro.sampling.collector import AnswerDistribution
from repro.sampling.scope import build_scope, resolve_mapping_node
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class ChainDistribution:
    """Joint answer distribution of a chain query.

    ``routes`` maps each answer to its per-route components: a tuple of
    ``(intermediate_path, probability)`` pairs; ``distribution`` is the
    accumulated marginal the estimators consume.
    """

    distribution: AnswerDistribution
    routes: dict[int, tuple[tuple[tuple[int, ...], float], ...]]
    expanded_intermediates: int
    truncated: bool


class ChainSampler:
    """Builds the composed stationary distribution of a chain component."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: PredicateVectorSpace,
        *,
        n_bound: int = 3,
        max_intermediates: int = 64,
        self_loop_weight: float = 0.001,
        similarity_floor: float = 1e-3,
    ) -> None:
        if max_intermediates < 1:
            raise SamplingError("max_intermediates must be >= 1")
        self._kg = kg
        self._space = space
        self.n_bound = n_bound
        self.max_intermediates = max_intermediates
        self.self_loop_weight = self_loop_weight
        self.similarity_floor = similarity_floor
        from repro.sampling.strength import PredicateEdgeWeights

        self._edge_weights = PredicateEdgeWeights(kg, space, floor=similarity_floor)

    # ------------------------------------------------------------------
    def _stage_distribution(
        self, source: int, predicate: str, node_types: frozenset[str]
    ) -> AnswerDistribution:
        """Stationary answer distribution of one hop's walk from ``source``.

        Uses the closed-form strength distribution (the walk is reversible;
        see :mod:`repro.sampling.strength`) so that chains with many
        intermediates stay affordable — one edge pass per stage instead of
        one power iteration per intermediate.
        """
        from repro.sampling.collector import restrict_to_answers
        from repro.sampling.strength import strength_distribution

        scope = build_scope(self._kg, source, self.n_bound, node_types)
        if scope.num_candidates == 0:
            raise SamplingError(
                f"no candidates of types {sorted(node_types)} within "
                f"{self.n_bound} hops of node {source}"
            )
        probabilities = strength_distribution(
            self._kg,
            scope,
            self._edge_weights.weights(predicate),
            self_loop_weight=self.self_loop_weight,
        )
        return restrict_to_answers(scope, probabilities)

    def build(self, component: PathQuery) -> ChainDistribution:
        """Compose the per-hop distributions along ``component``."""
        source = resolve_mapping_node(
            self._kg, component.specific_name, component.specific_types
        )
        # frontier: partial route (nodes after the specific one) -> probability
        frontier: dict[tuple[int, ...], float] = {(): 1.0}
        truncated = False
        expanded = 0

        for predicate, node_types in component.hops:
            next_frontier: dict[tuple[int, ...], float] = {}
            # Expand only the most probable routes, keeping the cap global
            # per hop so deep chains stay tractable.
            ranked = sorted(frontier.items(), key=lambda item: -item[1])
            kept = ranked[: self.max_intermediates]
            if len(ranked) > len(kept):
                truncated = True
            kept_mass = sum(probability for _, probability in kept)
            if kept_mass <= 0:
                raise SamplingError("chain sampling lost all probability mass")
            for route, probability in kept:
                start = route[-1] if route else source
                try:
                    stage = self._stage_distribution(start, predicate, node_types)
                except SamplingError:
                    continue  # this intermediate reaches no next-hop candidate
                expanded += 1
                renormalised = probability / kept_mass
                for node, node_probability in zip(stage.answers, stage.probabilities):
                    extended = route + (int(node),)
                    contribution = renormalised * float(node_probability)
                    next_frontier[extended] = next_frontier.get(extended, 0.0) + contribution
            if not next_frontier:
                raise SamplingError(
                    f"chain hop with predicate {predicate!r} produced no candidates"
                )
            frontier = next_frontier

        # Accumulate route probabilities per final answer (the paper's rule).
        marginal: dict[int, float] = {}
        routes: dict[int, list[tuple[tuple[int, ...], float]]] = {}
        for route, probability in frontier.items():
            answer = route[-1]
            marginal[answer] = marginal.get(answer, 0.0) + probability
            routes.setdefault(answer, []).append((route[:-1], probability))

        answers = np.asarray(sorted(marginal), dtype=np.int64)
        probabilities = np.asarray(
            [marginal[int(answer)] for answer in answers], dtype=np.float64
        )
        probabilities = probabilities / probabilities.sum()
        distribution = AnswerDistribution(answers=answers, probabilities=probabilities)
        frozen_routes = {
            answer: tuple(sorted(pairs, key=lambda pair: -pair[1]))
            for answer, pairs in routes.items()
        }
        return ChainDistribution(
            distribution=distribution,
            routes=frozen_routes,
            expanded_intermediates=expanded,
            truncated=truncated,
        )

    def collect(
        self,
        chain: ChainDistribution,
        sample_size: int,
        seed: int | np.random.Generator | None = None,
    ) -> list[SampledAnswer]:
        """Draw i.i.d. answers; each carries its most likely route."""
        if sample_size <= 0:
            raise SamplingError("sample_size must be positive")
        rng = ensure_rng(seed)
        distribution = chain.distribution
        picks = rng.choice(
            len(distribution.answers), size=sample_size, p=distribution.probabilities
        )
        sampled = []
        for pick in picks:
            node = int(distribution.answers[pick])
            best_route = chain.routes[node][0][0] if chain.routes.get(node) else ()
            sampled.append(
                SampledAnswer(
                    node_id=node,
                    probability=float(distribution.probabilities[pick]),
                    route=best_route,
                )
            )
        return sampled
